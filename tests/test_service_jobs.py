"""Tests for service jobs (repro.service.jobs) and deadlines."""

import pytest

from repro import elevator_kb, staircase_kb
from repro.kbs.witnesses import transitive_closure_kb
from repro.logic.serialization import dump_kb, load_kb
from repro.service.deadline import Deadline
from repro.service.jobs import JobRequest, JobResult, execute_job
from repro.service.snapshots import SnapshotStore

STAIRCASE = dump_kb(staircase_kb())
ELEVATOR = dump_kb(elevator_kb())
#: A vertical chain of length two: needs a handful of staircase steps.
STAIR_QUERY = "v(X, Y), v(Y, Z)"


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert not deadline()
        assert deadline.unlimited
        assert deadline.remaining() > 1e9

    def test_zero_budget_expired_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_injectable_clock(self):
        now = [100.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(5.0)
        now[0] = 104.9
        assert not deadline.expired()
        now[0] = 105.0
        assert deadline.expired()
        assert deadline.remaining() == 0.0


class TestJobWire:
    def test_request_round_trip(self):
        req = JobRequest(
            op="entail",
            kb_text=STAIRCASE,
            query=STAIR_QUERY,
            variant="core",
            max_steps=40,
            timeout=1.5,
            id="r1",
        )
        back = JobRequest.from_obj(req.to_obj())
        assert back == req

    def test_request_from_partial_obj_uses_defaults(self):
        req = JobRequest.from_obj({"op": "chase", "kb_text": STAIRCASE})
        assert req.variant == "restricted"
        assert req.max_steps == 200
        assert req.timeout is None

    def test_request_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            JobRequest.from_obj({"op": "entail"})

    def test_dedup_key_ignores_id(self):
        a = JobRequest(op="entail", kb_text=STAIRCASE, query="f(X)", id="a")
        b = JobRequest(op="entail", kb_text=STAIRCASE, query="f(X)", id="b")
        assert a.dedup_key() == b.dedup_key()
        c = JobRequest(op="entail", kb_text=STAIRCASE, query="c(X)", id="a")
        assert a.dedup_key() != c.dedup_key()

    def test_result_round_trip(self):
        result = JobResult(
            op="entail",
            entailed=True,
            method="chase-prefix-hit",
            warm=True,
            applications=3,
            total_applications=9,
        )
        assert JobResult.from_obj(result.to_obj()) == result


class TestExecuteJob:
    def test_entail_yes(self):
        result = execute_job(
            JobRequest(
                op="entail", kb_text=STAIRCASE, query=STAIR_QUERY, max_steps=60
            )
        )
        assert result.ok
        assert result.entailed is True
        assert result.method == "chase-prefix-hit"
        assert not result.warm and not result.incomplete

    def test_entail_exact_no_at_fixpoint(self):
        kb_text = dump_kb(transitive_closure_kb(3))
        result = execute_job(
            JobRequest(
                op="entail",
                kb_text=kb_text,
                query="nosuch(X, Y)",
                max_steps=200,
            )
        )
        assert result.ok
        assert result.terminated
        assert result.entailed is False
        assert result.method == "chase-fixpoint-miss"

    def test_entail_budget_exhausted_undecided(self):
        result = execute_job(
            JobRequest(
                op="entail", kb_text=STAIRCASE, query="nosuch(X)", max_steps=5
            )
        )
        assert result.ok
        assert result.entailed is None
        assert result.method == "chase-budget-exhausted"
        assert not result.incomplete

    def test_entail_countermodel_no(self):
        kb_text = dump_kb(transitive_closure_kb(3))
        result = execute_job(
            JobRequest(
                op="entail",
                kb_text=kb_text,
                query="nosuch(X, Y)",
                max_steps=1,
                model_budget=4,
            )
        )
        assert result.ok
        assert result.entailed is False
        assert result.method == "finite-countermodel"

    def test_chase_returns_instance(self):
        result = execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=6)
        )
        assert result.ok
        assert result.applications == 6
        assert result.atoms == len(result.instance)
        assert all(isinstance(atom, str) for atom in result.instance)

    def test_bad_op_is_error_result(self):
        result = execute_job(JobRequest(op="frobnicate", kb_text=STAIRCASE))
        assert not result.ok
        assert "frobnicate" in result.error

    def test_bad_kb_is_error_result(self):
        result = execute_job(JobRequest(op="chase", kb_text="not a kb"))
        assert not result.ok
        assert result.error

    def test_entail_without_query_is_error_result(self):
        result = execute_job(JobRequest(op="entail", kb_text=STAIRCASE))
        assert not result.ok
        assert "query" in result.error


class TestDeadlineDegradation:
    def test_expired_deadline_degrades_gracefully(self):
        result = execute_job(
            JobRequest(
                op="entail",
                kb_text=ELEVATOR,
                query="nosuch(X, Y)",
                variant="core",
                max_steps=10**6,
                timeout=0.0,
            )
        )
        assert result.ok
        assert result.entailed is None
        assert result.incomplete
        assert result.deadline_expired
        assert result.method == "deadline-expired"

    def test_chase_deadline_partial_instance(self):
        result = execute_job(
            JobRequest(
                op="chase", kb_text=STAIRCASE, max_steps=10**6, timeout=0.0
            )
        )
        assert result.ok
        assert result.incomplete and result.deadline_expired
        assert result.method == "chase-deadline"
        assert result.instance  # the sound partial model came back

    def test_hit_before_deadline_is_sound_yes(self):
        # A generous deadline: the hit fires long before expiry, so the
        # answer is exact despite the timeout being set.
        result = execute_job(
            JobRequest(
                op="entail",
                kb_text=STAIRCASE,
                query=STAIR_QUERY,
                max_steps=60,
                timeout=60.0,
            )
        )
        assert result.ok
        assert result.entailed is True
        assert not result.incomplete and not result.deadline_expired


class TestWarmStart:
    def test_second_identical_entail_is_warm_with_zero_applications(
        self, tmp_path
    ):
        store = SnapshotStore(tmp_path)
        req = JobRequest(
            op="entail", kb_text=STAIRCASE, query=STAIR_QUERY, max_steps=60
        )
        cold = execute_job(req, store)
        warm = execute_job(req, store)
        assert cold.entailed is True and not cold.warm
        assert warm.entailed is True and warm.warm
        assert warm.applications == 0
        assert warm.method == "warm-snapshot-hit"
        assert warm.total_applications == cold.total_applications

    def test_warm_chase_extends_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        first = execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=8), store
        )
        second = execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=14), store
        )
        cold = execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=14)
        )
        assert first.applications == 8
        assert second.warm
        assert second.applications == 6
        assert second.total_applications == 14
        assert second.instance == cold.instance

    def test_deeper_snapshot_not_used_for_smaller_budget(self, tmp_path):
        store = SnapshotStore(tmp_path)
        execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=20), store
        )
        small = execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=5), store
        )
        cold = execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=5)
        )
        assert not small.warm
        assert small.instance == cold.instance

    def test_smaller_cold_run_does_not_clobber_deeper_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=20), store
        )
        execute_job(
            JobRequest(op="chase", kb_text=STAIRCASE, max_steps=5), store
        )
        state = store.load(load_kb(STAIRCASE), "restricted", 1)
        assert state is not None
        assert state.applications == 20


CHAIN = dump_kb(transitive_closure_kb(5))
#: The same chain with one appended edge: a strict superset of CHAIN's
#: facts under identical rules — the ancestor-resume serving case.
CHAIN_GROWN = CHAIN.replace("[facts]", "[facts]\ne(v5, v6)", 1)


class TestAncestorResume:
    def test_grown_kb_resumes_from_ancestor(self, tmp_path):
        store = SnapshotStore(tmp_path)
        base = execute_job(
            JobRequest(op="chase", kb_text=CHAIN, max_steps=200), store
        )
        assert base.terminated
        incr = execute_job(
            JobRequest(op="chase", kb_text=CHAIN_GROWN, max_steps=200), store
        )
        cold = execute_job(
            JobRequest(op="chase", kb_text=CHAIN_GROWN, max_steps=200)
        )
        assert incr.ancestor and not incr.warm
        assert incr.instance == cold.instance
        assert incr.terminated
        # only the new edge's consequences were derived
        assert incr.applications < cold.applications
        assert incr.total_applications == cold.total_applications

    def test_entailed_in_ancestor_prefix_is_zero_work(self, tmp_path):
        store = SnapshotStore(tmp_path)
        execute_job(
            JobRequest(op="chase", kb_text=CHAIN, max_steps=200), store
        )
        # the query holds already in the ancestor's closure
        result = execute_job(
            JobRequest(
                op="entail",
                kb_text=CHAIN_GROWN,
                query="e(v0, v5)",
                max_steps=200,
            ),
            store,
        )
        assert result.entailed is True
        assert result.ancestor
        assert result.applications == 0
        assert result.method == "ancestor-snapshot-hit"

    def test_ancestor_save_makes_next_request_warm(self, tmp_path):
        store = SnapshotStore(tmp_path)
        execute_job(
            JobRequest(op="chase", kb_text=CHAIN, max_steps=200), store
        )
        first = execute_job(
            JobRequest(op="chase", kb_text=CHAIN_GROWN, max_steps=200), store
        )
        second = execute_job(
            JobRequest(op="chase", kb_text=CHAIN_GROWN, max_steps=200), store
        )
        assert first.ancestor
        assert second.warm and not second.ancestor
        assert second.applications == 0
        assert second.instance == first.instance

    def test_ancestor_resume_can_be_disabled(self, tmp_path):
        store = SnapshotStore(tmp_path, ancestor_resume=False)
        execute_job(
            JobRequest(op="chase", kb_text=CHAIN, max_steps=200), store
        )
        incr = execute_job(
            JobRequest(op="chase", kb_text=CHAIN_GROWN, max_steps=200), store
        )
        assert not incr.ancestor and not incr.warm

    def test_too_deep_ancestor_not_used_for_small_budget(self, tmp_path):
        store = SnapshotStore(tmp_path)
        deep = execute_job(
            JobRequest(op="chase", kb_text=CHAIN, max_steps=200), store
        )
        assert deep.applications > 3
        small = execute_job(
            JobRequest(op="chase", kb_text=CHAIN_GROWN, max_steps=3), store
        )
        cold = execute_job(
            JobRequest(op="chase", kb_text=CHAIN_GROWN, max_steps=3)
        )
        assert not small.ancestor and not small.warm
        assert small.instance == cold.instance

"""Triggers and rule application.

Given an instance ``I`` and a rule ``B → H``, a *trigger* is a pair
``(R, π)`` with ``π`` a homomorphism from ``B`` to ``I``; it is
*satisfied* in ``I`` if ``π`` extends to a homomorphism from ``B ∪ H`` to
``I`` (Section 2).  Applying a trigger produces
``α(I, tr) = I ∪ π_safe(H)`` where ``π_safe`` maps frontier variables
like ``π`` and existential variables to fresh nulls.

Activity notions per chase variant (Section 3) are also defined here:

* oblivious — every not-yet-applied trigger is active;
* semi-oblivious (skolem) — active unless a trigger with the same rule
  and the same *frontier* image was already applied;
* restricted / core — active iff not satisfied in the current instance.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from ..logic.homomorphism import find_homomorphism, homomorphisms
from ..logic.rules import ExistentialRule
from ..logic.substitution import Substitution
from ..logic.terms import FreshVariableSource, Term, Variable

__all__ = [
    "Trigger",
    "triggers",
    "triggers_from_delta",
    "unsatisfied_triggers",
    "apply_trigger",
]


class Trigger:
    """A trigger ``(R, π)``; ``mapping`` is ``π`` with exactly the body
    variables of ``R`` in its domain."""

    __slots__ = ("rule", "mapping", "_full", "_frontier", "_sort")

    def __init__(self, rule: ExistentialRule, mapping: Substitution):
        object.__setattr__(self, "rule", rule)
        object.__setattr__(self, "mapping", mapping.restrict(rule.body.variables()))
        # Image keys are pure functions of (rule, mapping) — both frozen
        # — and the trigger index recomputes them on every maintenance
        # pass, so they are cached on first use.
        object.__setattr__(self, "_full", None)
        object.__setattr__(self, "_frontier", None)
        object.__setattr__(self, "_sort", None)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("Trigger is immutable")

    # ------------------------------------------------------------------

    def is_trigger_for(self, instance: AtomSet) -> bool:
        """True iff ``π`` maps the body into *instance*."""
        return self.mapping.is_homomorphism(self.rule.body, instance)

    def is_satisfied_in(self, instance: AtomSet) -> bool:
        """True iff ``π`` extends to a homomorphism of body ∪ head.

        Only the head needs extending: the body is already mapped by
        ``π``, so we search for a homomorphism of the head with the
        frontier images pinned.
        """
        pinned = self.mapping.restrict(self.rule.frontier)
        return (
            find_homomorphism(self.rule.head, instance, partial=pinned) is not None
        )

    def frontier_image(self) -> tuple[tuple[Variable, Term], ...]:
        """The frontier restriction of ``π`` as a canonical key — the
        identity notion of the semi-oblivious chase."""
        cached = self._frontier
        if cached is None:
            cached = tuple(
                sorted(
                    ((v, self.mapping[v]) for v in self.rule.frontier),
                    key=lambda pair: pair[0].name,
                )
            )
            object.__setattr__(self, "_frontier", cached)
        return cached

    def full_image(self) -> tuple[tuple[Variable, Term], ...]:
        """The whole of ``π`` as a canonical key — the identity notion of
        the oblivious chase."""
        cached = self._full
        if cached is None:
            cached = tuple(
                sorted(self.mapping.items(), key=lambda pair: pair[0].name)
            )
            object.__setattr__(self, "_full", cached)
        return cached

    def transport(self, simplification: Substitution) -> "Trigger":
        """``σ(tr) = (R, σ ∘ π)`` — how triggers travel along
        simplifications (Section 3, before Definition 3)."""
        return Trigger(self.rule, simplification.compose(self.mapping))

    def sort_key(self) -> tuple:
        """Deterministic order for fair scheduling."""
        cached = self._sort
        if cached is None:
            cached = (
                self.rule.name or "",
                tuple((v.name, t.name) for v, t in self.full_image()),
            )
            object.__setattr__(self, "_sort", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Trigger)
            and other.rule == self.rule
            and other.mapping == self.mapping
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((self.rule, self.mapping))

    def __repr__(self) -> str:
        return f"Trigger({self.rule.name}, {self.mapping})"


def triggers(rule: ExistentialRule, instance: AtomSet) -> Iterator[Trigger]:
    """All triggers of *rule* on *instance*, in deterministic order."""
    found = [
        Trigger(rule, hom) for hom in homomorphisms(rule.body, instance)
    ]
    found.sort(key=Trigger.sort_key)
    return iter(found)


def _unify_body_atom(body_atom, delta_atom) -> Optional[Substitution]:
    """The unique substitution of the body atom's variables sending it
    onto *delta_atom*, or None if the two cannot match (predicate or
    constant clash, or a repeated variable forced onto two images)."""
    if body_atom.predicate != delta_atom.predicate:
        return None
    bindings: dict[Variable, Term] = {}
    for src_term, tgt_term in zip(body_atom.args, delta_atom.args):
        if isinstance(src_term, Variable):
            bound = bindings.get(src_term)
            if bound is None:
                bindings[src_term] = tgt_term
            elif bound != tgt_term:
                return None
        elif src_term != tgt_term:
            return None
    return Substitution(bindings)


def triggers_from_delta(
    rule: ExistentialRule,
    instance: AtomSet,
    delta: Iterable[Atom],
) -> Iterator[Trigger]:
    """The triggers of *rule* on *instance* whose body image uses at
    least one atom of *delta* — the semi-naive re-matching step.

    Every atom of *delta* must already be in *instance*, and *delta*
    must consist of atoms that were **absent** before this step: then a
    homomorphism of the body either avoids *delta* entirely (an old
    trigger, untouched by the index) or sends some body atom onto a
    delta atom — and the search below, which pins each body atom to each
    compatible delta atom in turn, finds it.  Duplicates (one
    homomorphism touching several delta atoms) are collapsed on the
    mapping.
    """
    delta_atoms = list(delta)
    seen: set[Substitution] = set()
    for body_atom in rule.body.sorted_atoms():
        for delta_atom in delta_atoms:
            pinned = _unify_body_atom(body_atom, delta_atom)
            if pinned is None:
                continue
            for hom in homomorphisms(rule.body, instance, partial=pinned):
                trigger = Trigger(rule, hom)
                if trigger.mapping in seen:
                    continue
                seen.add(trigger.mapping)
                yield trigger


def unsatisfied_triggers(
    rule: ExistentialRule, instance: AtomSet
) -> Iterator[Trigger]:
    """The triggers of *rule* on *instance* that are not satisfied there
    (the active triggers of the restricted/core chase)."""
    for trigger in triggers(rule, instance):
        if not trigger.is_satisfied_in(instance):
            yield trigger


def apply_trigger(
    instance: AtomSet,
    trigger: Trigger,
    fresh: FreshVariableSource,
) -> tuple[AtomSet, Substitution]:
    """``α(I, tr)``: apply *trigger* to *instance*.

    Returns the new instance (a fresh :class:`AtomSet`; the input is not
    mutated) and the safe substitution ``π_safe`` used, whose domain is
    frontier ∪ existential variables of the rule.
    """
    rule = trigger.rule
    safe_map: dict[Variable, Term] = {}
    for var in rule.frontier:
        safe_map[var] = trigger.mapping.apply_term(var)
    for var in sorted(rule.existential, key=lambda v: v.name):
        safe_map[var] = fresh.fresh(hint=var)
    pi_safe = Substitution(safe_map)
    result = instance.copy()
    result.update(pi_safe.apply_atom(at) for at in rule.head.sorted_atoms())
    return result, pi_safe

"""P1b — engine performance: core computation.

The core chase's per-step cost is dominated by core retraction; these
benches measure it on the canonical foldable/rigid families and on the
paper's own structures.

``bench_perf_cores_table`` additionally archives the core-chase gate
table (``results/perf_cores.json``) the CI perf gate diffs against the
committed baseline (``baselines/perf_cores.json``).  Its rows carry the
run's exactness counts (applications, retractions, atoms out) as
integer identity fields, so the incremental core maintainer can only
pass the gate by being *fast and bit-identical in behaviour*: a count
drift surfaces as semantic drift in ``compare_results.py``, not as a
timing change.  ``REPRO_ENGINE=naive|indexed|compiled`` selects the
engine path to time (default: compiled; the legacy ``REPRO_NAIVE=1``
still selects naive, the committed baseline's path); see
docs/PERFORMANCE.md.
"""

import time

import pytest

from repro.chase.engine import ChaseVariant, run_chase
from repro.kbs.elevator import elevator_kb
from repro.kbs.generators import path_with_shortcut, star_instance
from repro.kbs.staircase import staircase_kb
from repro.kbs.staircase import step as staircase_step
from repro.kbs.witnesses import transitive_closure_kb
from repro.logic.cores import core_of, core_retraction, is_core
from repro.logic.homcache import get_cache
from repro.util import Table

from conftest import current_engine, engine_scope, quiesced_gc, save_table


@pytest.mark.parametrize("rays", [6, 18])
def bench_core_of_star(benchmark, rays):
    """Maximally foldable: all rays collapse onto one."""
    atoms = star_instance(rays)
    core = benchmark(lambda: core_of(atoms))
    assert len(core) == 1


@pytest.mark.parametrize("length", [4, 8])
def bench_core_of_parallel_paths(benchmark, length):
    """The null path folds onto the constant path edge by edge."""
    atoms = path_with_shortcut(length)
    core = benchmark(lambda: core_of(atoms))
    assert len(core) == length


def bench_is_core_positive(benchmark):
    """Certifying core-ness requires exhausting the search — the
    expensive direction."""
    atoms = staircase_step(2)
    from repro.kbs.staircase import column

    target = column(3)
    assert benchmark(lambda: is_core(target))


def bench_core_retraction_staircase_step(benchmark):
    """The actual operation of the K_h core chase: fold a step S^h_k onto
    its core column C^h_{k+1}."""
    atoms = staircase_step(3)
    retraction = benchmark(lambda: core_retraction(atoms))
    assert retraction.apply(atoms) != atoms or len(retraction) == 0


# ---------------------------------------------------------------------------
# the core-chase perf-gate timing table
# ---------------------------------------------------------------------------

#: (workload, kb factory, step budget) — every row is a CORE-variant run.
#: The elevator row is the fig4 workload the incremental maintainer must
#: keep >=3x faster than the committed naive baseline.
PERF_CORES_ROWS = (
    ("fig4-elevator", elevator_kb, 35),
    ("staircase", staircase_kb, 45),
    ("transitive-5", lambda: transitive_closure_kb(5), 300),
)


def _timed_core_chase(make_kb, steps, repeats=3):
    """Best-of-*repeats* wall time; the memo is cleared before every
    measurement so each run is cold and comparable across processes."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        get_cache().clear()
        kb = make_kb()
        with quiesced_gc():
            started = time.perf_counter()
            result = run_chase(kb, variant=ChaseVariant.CORE, max_steps=steps)
            best = min(best, time.perf_counter() - started)
    return best, result


def bench_perf_cores_table():
    """Archive the core-chase gate table (one row per workload; metric
    column: ``seconds``; every other column is a row-identity field)."""
    engine = current_engine()
    table = Table(
        ["workload", "steps", "applications", "retractions", "atoms_out", "seconds"],
        title=f"perf: core-chase wall time and exactness counts ({engine} engine)",
    )
    with engine_scope(engine):
        for workload, make_kb, steps in PERF_CORES_ROWS:
            seconds, result = _timed_core_chase(make_kb, steps)
            table.add_row(
                workload,
                steps,
                result.applications,
                result.retractions,
                len(result.final_instance),
                round(seconds, 4),
            )
    extra = (
        f"engine path: {engine} (REPRO_ENGINE); "
        "best of 3, cold homomorphism memo per measurement.  The count "
        "columns are identity fields: a drift fails the gate as semantic "
        "drift, independent of timing."
    )
    save_table("perf_cores", table, extra)

"""Incremental maintenance of the live-trigger pool.

The naive engine re-derives every trigger of every rule from scratch
before each application — a full homomorphism enumeration per rule per
step, plus a satisfaction check per trigger for the restricted/core
variants.  This module replaces the rescan with delta-driven
maintenance built on two invariants of chase derivations:

1. **Growth** (``F → F ∪ Δ``): a trigger of the grown instance either
   avoids ``Δ`` (it was already live) or sends a body atom onto a
   ``Δ``-atom — found by :func:`~repro.chase.trigger.triggers_from_delta`
   with only the rules whose body predicates meet ``Δ``'s re-matched.
   Satisfaction is monotone under growth, so a satisfied trigger stays
   satisfied; an unsatisfied one needs a recheck only if the new atoms
   could host the head image, i.e. only if the rule's *head* predicates
   meet ``Δ``'s.
2. **Retraction** (``F → σ(F)`` with ``σ`` a retraction of ``F``, i.e.
   an *idempotent* endomorphism): the triggers of ``σ(F)`` are exactly
   the transports ``σ ∘ π`` of the triggers of ``F`` (Section 3's
   transport, before Definition 3) — a retraction is the identity on
   the terms of its image, so a trigger that already lives inside
   ``σ(F)`` is its own transport, and every transport lands inside
   ``σ(F)``.  Satisfaction transfers exactly, with no re-testing:
   ``σ ∘ π`` is itself an (old) trigger of ``F``, and ``σ ∘ π`` is
   satisfied in ``σ(F)`` iff it was satisfied in ``F`` — a witness in
   ``σ(F) ⊆ F`` is already one in ``F``, and conversely composing an
   ``F``-witness ``h ⊇ σ∘π`` with ``σ`` gives ``σ∘h ⊇ σ∘σ∘π = σ∘π``
   into ``σ(F)`` (idempotence).  Keeping the union of the old satisfied
   marks across key collapses is therefore both sound and complete.

Together these make the live pool — and the satisfied subset the
restricted/core variants filter on — maintainable without ever
re-enumerating a rule whose neighbourhood did not change.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from ..logic.rules import ExistentialRule
from ..logic.substitution import Substitution
from .trigger import Trigger, triggers, triggers_from_delta

__all__ = ["TriggerIndex"]

TriggerKey = tuple


class TriggerIndex:
    """The incrementally maintained set of live triggers of an instance.

    Parameters
    ----------
    rules:
        The rule set of the KB (iteration order is preserved; rule names
        must be unique, as :class:`repro.logic.rules.RuleSet` enforces).
    instance:
        The instance to build the initial pool from.
    track_satisfaction:
        Maintain the satisfied subset (needed by the restricted, frugal
        and core variants; the oblivious variants never ask).
    """

    __slots__ = ("rules", "track_satisfaction", "_live", "_satisfied", "_body_preds", "_head_preds")

    def __init__(
        self,
        rules: Iterable[ExistentialRule],
        instance: AtomSet,
        track_satisfaction: bool = True,
    ):
        self.rules = list(rules)
        self.track_satisfaction = track_satisfaction
        self._body_preds = {
            rule.name: rule.body.predicates() for rule in self.rules
        }
        self._head_preds = {
            rule.name: rule.head.predicates() for rule in self.rules
        }
        self._live: dict[TriggerKey, Trigger] = {}
        self._satisfied: set[TriggerKey] = set()
        self.rebuild(instance)

    @staticmethod
    def key(trigger: Trigger) -> TriggerKey:
        """Canonical identity of a trigger — shared with the engine's
        fair-scheduling age table."""
        return (trigger.rule.name, trigger.full_image())

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._live)

    def live_triggers(self) -> list[Trigger]:
        """Every trigger of the current instance."""
        return list(self._live.values())

    def unsatisfied_triggers(self) -> list[Trigger]:
        """The live triggers not known satisfied — the active pool of
        the restricted/frugal/core variants."""
        satisfied = self._satisfied
        return [
            trigger
            for key, trigger in self._live.items()
            if key not in satisfied
        ]

    def is_satisfied(self, trigger: Trigger) -> bool:
        """True iff the index has *trigger* marked satisfied."""
        return self.key(trigger) in self._satisfied

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def rebuild(self, instance: AtomSet) -> None:
        """Recompute the pool from scratch (initialisation, and the
        fallback correctness oracle differential tests compare against).
        """
        self._live.clear()
        self._satisfied.clear()
        for rule in self.rules:
            for trigger in triggers(rule, instance):
                key = self.key(trigger)
                self._live[key] = trigger
                if self.track_satisfaction and trigger.is_satisfied_in(instance):
                    self._satisfied.add(key)

    def apply_delta(
        self,
        instance: AtomSet,
        delta: list[Atom],
        satisfied_hint: Optional[Trigger] = None,
    ) -> dict:
        """Absorb a growth step: *instance* is the post-application
        instance already containing the *delta* atoms (which must all be
        new).  *satisfied_hint* is a trigger the caller knows is
        satisfied now (the one just applied) — marking it saves one
        search.  Returns maintenance statistics for telemetry.
        """
        delta_preds = {at.predicate for at in delta}
        before = len(self._live)
        new_keys: set[TriggerKey] = set()
        if delta_preds:
            for rule in self.rules:
                if not (self._body_preds[rule.name] & delta_preds):
                    continue
                for trigger in triggers_from_delta(rule, instance, delta):
                    key = self.key(trigger)
                    if key not in self._live:
                        self._live[key] = trigger
                        new_keys.add(key)
        rechecks = 0
        if self.track_satisfaction:
            if satisfied_hint is not None:
                self._satisfied.add(self.key(satisfied_hint))
            for key, trigger in self._live.items():
                if key in self._satisfied:
                    continue
                fresh = key in new_keys
                if not fresh and not (
                    self._head_preds[key[0]] & delta_preds
                ):
                    # Satisfaction is monotone: an old unsatisfied
                    # trigger can only have flipped if the delta can
                    # host part of its head image.
                    continue
                rechecks += 1
                if trigger.is_satisfied_in(instance):
                    self._satisfied.add(key)
        return {
            "delta_atoms": len(delta),
            "triggers_new": len(new_keys),
            "triggers_reused": before,
            "satisfaction_rechecks": rechecks,
        }

    def transport(self, simplification: Substitution) -> dict:
        """Absorb a retraction step: carry every live trigger through the
        simplification ``σ`` — which must be a genuine retraction
        (idempotent endomorphism) of the pre-instance, as everything the
        engine produces is.  No re-matching and no satisfaction
        re-testing is needed — see the module docstring.  Returns
        statistics.
        """
        old_live = self._live
        old_satisfied = self._satisfied
        self._live = {}
        self._satisfied = set()
        for key, trigger in old_live.items():
            moved = trigger.transport(simplification)
            moved_key = self.key(moved)
            if moved_key not in self._live:
                self._live[moved_key] = moved
            if key in old_satisfied:
                self._satisfied.add(moved_key)
        return {
            "transported": len(old_live),
            "collapsed": len(old_live) - len(self._live),
        }

"""E2 — Figure 2 / Proposition 3: the restricted chase of K_h builds the
universal model I^h.

Measures the restricted chase run, prints the per-step growth of the
monotone sequence, and checks the identification claims:

* the derivation is monotonic (Section 3);
* the prefix maps homomorphically into a capped I^h window (every chase
  prefix is universal, Proposition 1(1), and the capped window is a
  finite model);
* early I^h windows map into the natural aggregation (fairness at work).
"""

from repro import maps_into, restricted_chase
from repro.kbs import staircase as sc
from repro.util import Table

from conftest import save_table


def bench_fig2_staircase_restricted(benchmark, staircase_restricted_run):
    # Timed portion: a fresh (shorter) run so the measurement reflects
    # the chase itself, while shape checks reuse the session-wide run.
    result = benchmark.pedantic(
        lambda: restricted_chase(sc.staircase_kb(), max_steps=25),
        rounds=1,
        iterations=1,
    )
    long_run = staircase_restricted_run

    table = Table(
        ["step", "atoms", "terms"],
        title="Prop. 3 — restricted chase of K_h (monotone growth toward I^h)",
    )
    for step in long_run.derivation:
        if step.index % 5 == 0:
            table.add_row(step.index, len(step.instance), len(step.instance.terms()))

    assert long_run.derivation.is_monotonic()
    assert not long_run.terminated
    assert maps_into(long_run.final_instance, sc.capped_model(6))
    aggregation = long_run.derivation.natural_aggregation()
    assert maps_into(sc.universal_model_window(1), aggregation)
    assert result.derivation.is_monotonic()

    extra = (
        "shape: monotone, non-terminating, prefix universal (maps into the\n"
        "capped I^h window), early I^h windows already materialized."
    )
    save_table("fig2_staircase_restricted", table, extra)

"""Tests for repro.chase.trigger."""

from repro.chase.trigger import Trigger, apply_trigger, triggers, unsatisfied_triggers
from repro.logic.parser import parse_atoms, parse_rule
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, FreshVariableSource, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestEnumeration:
    def test_all_body_homomorphisms_found(self):
        rule = parse_rule("[R] e(X, Y) -> e(Y, Z)")
        instance = parse_atoms("e(a, b), e(b, a)")
        found = list(triggers(rule, instance))
        assert len(found) == 2

    def test_no_triggers_without_body_match(self):
        rule = parse_rule("[R] q(X) -> p(X)")
        assert list(triggers(rule, parse_atoms("p(a)"))) == []

    def test_trigger_mapping_restricted_to_body_variables(self):
        rule = parse_rule("[R] e(X, Y) -> e(Y, Z)")
        trigger = next(iter(triggers(rule, parse_atoms("e(a, b)"))))
        assert trigger.mapping.domain() == {X, Y}

    def test_enumeration_deterministic(self):
        rule = parse_rule("[R] e(X, Y) -> e(Y, Z)")
        instance = parse_atoms("e(a, b), e(b, a), e(a, a)")
        first = [t.mapping for t in triggers(rule, instance)]
        second = [t.mapping for t in triggers(rule, instance)]
        assert first == second


class TestSatisfaction:
    def test_satisfied_when_head_present(self):
        rule = parse_rule("[R] p(X) -> e(X, Y)")
        instance = parse_atoms("p(a), e(a, b)")
        trigger = next(iter(triggers(rule, instance)))
        assert trigger.is_satisfied_in(instance)

    def test_unsatisfied_without_head(self):
        rule = parse_rule("[R] p(X) -> e(X, Y)")
        instance = parse_atoms("p(a)")
        trigger = next(iter(triggers(rule, instance)))
        assert not trigger.is_satisfied_in(instance)

    def test_satisfaction_pins_frontier(self):
        rule = parse_rule("[R] p(X) -> e(X, Y)")
        # e exists, but from the wrong element: trigger on p(a) unsatisfied
        instance = parse_atoms("p(a), p(b), e(b, b)")
        by_image = {
            t.mapping.apply_term(X).name: t for t in triggers(rule, instance)
        }
        assert not by_image["a"].is_satisfied_in(instance)
        assert by_image["b"].is_satisfied_in(instance)

    def test_unsatisfied_triggers_filter(self):
        rule = parse_rule("[R] p(X) -> e(X, Y)")
        instance = parse_atoms("p(a), p(b), e(b, b)")
        pending = list(unsatisfied_triggers(rule, instance))
        assert len(pending) == 1
        assert pending[0].mapping.apply_term(X) == a

    def test_datalog_satisfaction_is_exact_head_check(self):
        rule = parse_rule("[R] p(X) -> q(X)")
        instance = parse_atoms("p(a), q(b)")
        trigger = next(iter(triggers(rule, instance)))
        assert not trigger.is_satisfied_in(instance)


class TestApplication:
    def test_apply_creates_fresh_nulls(self):
        rule = parse_rule("[R] p(X) -> e(X, Y), p(Y)")
        instance = parse_atoms("p(a)")
        trigger = next(iter(triggers(rule, instance)))
        result, pi_safe = apply_trigger(instance, trigger, FreshVariableSource())
        assert len(result) == 3
        fresh = pi_safe.apply_term(Y)
        assert fresh not in instance.terms()
        assert fresh in result.terms()

    def test_apply_does_not_mutate_input(self):
        rule = parse_rule("[R] p(X) -> q(X)")
        instance = parse_atoms("p(a)")
        trigger = next(iter(triggers(rule, instance)))
        apply_trigger(instance, trigger, FreshVariableSource())
        assert len(instance) == 1

    def test_apply_maps_frontier_correctly(self):
        rule = parse_rule("[R] e(X, Y) -> e(Y, Z)")
        instance = parse_atoms("e(a, b)")
        trigger = next(iter(triggers(rule, instance)))
        result, pi_safe = apply_trigger(instance, trigger, FreshVariableSource())
        assert pi_safe.apply_term(Y) == b
        new_atoms = result.difference(instance)
        assert len(new_atoms) == 1
        assert next(iter(new_atoms)).args[0] == b

    def test_distinct_existentials_get_distinct_nulls(self):
        rule = parse_rule("[R] p(X) -> e(X, Y), e(X, Z)")
        instance = parse_atoms("p(a)")
        trigger = next(iter(triggers(rule, instance)))
        _, pi_safe = apply_trigger(instance, trigger, FreshVariableSource())
        assert pi_safe.apply_term(Y) != pi_safe.apply_term(Z)


class TestIdentityNotions:
    def test_frontier_image_key(self):
        rule = parse_rule("[R] e(X, Y), e(Y, W) -> e(Y, Z)")
        instance = parse_atoms("e(a, b), e(b, a)")
        for trigger in triggers(rule, instance):
            key = trigger.frontier_image()
            assert len(key) == 1  # only Y is frontier
            assert key[0][0] == Y

    def test_full_image_distinguishes_nonfrontier(self):
        rule = parse_rule("[R] e(X, Y), e(Y, W) -> e(Y, Z)")
        instance = parse_atoms("e(a, b), e(b, a), e(b, b)")
        keys = {t.full_image() for t in triggers(rule, instance)}
        frontier_keys = {t.frontier_image() for t in triggers(rule, instance)}
        assert len(keys) > len(frontier_keys)

    def test_transport_composes_mapping(self):
        rule = parse_rule("[R] p(X) -> q(X)")
        trigger = Trigger(rule, Substitution({X: Y}))
        transported = trigger.transport(Substitution({Y: a}))
        assert transported.mapping.apply_term(X) == a

    def test_equality_and_hash(self):
        rule = parse_rule("[R] p(X) -> q(X)")
        t1 = Trigger(rule, Substitution({X: a}))
        t2 = Trigger(rule, Substitution({X: a}))
        assert t1 == t2
        assert hash(t1) == hash(t2)

"""Predicate positions.

A *position* is a pair ``(p, i)`` of a predicate and an argument index —
the vocabulary of the weak-acyclicity dependency graph (Fagin et al.,
cited as [10] in the paper) and of several other syntactic termination
criteria.
"""

from __future__ import annotations

from typing import Iterator

from ..logic.atoms import Predicate
from ..logic.atomset import AtomSet
from ..logic.rules import RuleSet
from ..logic.terms import Variable

__all__ = ["Position", "positions_of_ruleset", "variable_positions"]


class Position:
    """An argument position of a predicate."""

    __slots__ = ("predicate", "index")

    def __init__(self, predicate: Predicate, index: int):
        if not 0 <= index < predicate.arity:
            raise ValueError(
                f"index {index} out of range for {predicate} (arity {predicate.arity})"
            )
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "index", index)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("Position is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Position)
            and other.predicate == self.predicate
            and other.index == self.index
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((self.predicate, self.index))

    def __lt__(self, other: "Position") -> bool:
        if not isinstance(other, Position):
            return NotImplemented
        return (self.predicate, self.index) < (other.predicate, other.index)

    def __repr__(self) -> str:
        return f"Position({self.predicate.name}, {self.index})"

    def __str__(self) -> str:
        return f"{self.predicate.name}[{self.index}]"


def positions_of_ruleset(rules: RuleSet) -> list[Position]:
    """All positions of all predicates mentioned by the rule set."""
    result = [
        Position(pred, index)
        for pred in sorted(rules.predicates())
        for index in range(pred.arity)
    ]
    return result


def variable_positions(
    atoms: AtomSet, variable: Variable
) -> Iterator[Position]:
    """The positions at which *variable* occurs in *atoms* (with
    multiplicity collapsed)."""
    seen: set[Position] = set()
    for at in atoms.containing(variable):
        for index, term in enumerate(at.args):
            if term == variable:
                position = Position(at.predicate, index)
                if position not in seen:
                    seen.add(position)
                    yield position

"""Nice tree decompositions.

Courcelle-style dynamic programming (the engine behind Theorem 1's
bounded-treewidth satisfiability step) is formulated over *nice*
decompositions, where every node is one of:

* a **leaf** with an empty bag;
* an **introduce** node: bag = child's bag plus one vertex;
* a **forget** node: bag = child's bag minus one vertex;
* a **join** node: two children with identical bags.

:func:`make_nice` normalizes any valid tree decomposition into a nice
one of the same width (empty-bag root and leaves included), and
:class:`NiceTreeDecomposition` validates the shape — the library's
executable stand-in for "we could now run Courcelle", and a useful
substrate in its own right.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from .decomposition import TreeDecomposition

__all__ = ["NiceNode", "NiceTreeDecomposition", "make_nice"]

Vertex = Hashable


@dataclass
class NiceNode:
    """A node of a nice tree decomposition."""

    kind: str  # "leaf" | "introduce" | "forget" | "join"
    bag: frozenset
    children: list[int] = field(default_factory=list)
    vertex: Optional[Vertex] = None  # the introduced/forgotten vertex

    def __post_init__(self):
        if self.kind not in ("leaf", "introduce", "forget", "join"):
            raise ValueError(f"unknown nice node kind {self.kind!r}")


class NiceTreeDecomposition:
    """A rooted nice tree decomposition (node 0 is not necessarily the
    root; see :attr:`root`)."""

    def __init__(self, nodes: list[NiceNode], root: int):
        self.nodes = nodes
        self.root = root

    @property
    def width(self) -> int:
        if not self.nodes:
            return -1
        return max(len(node.bag) for node in self.nodes) - 1

    def __len__(self) -> int:
        return len(self.nodes)

    def validate_shape(self) -> bool:
        """Check the structural nice-ness conditions."""
        for node in self.nodes:
            children = [self.nodes[c] for c in node.children]
            if node.kind == "leaf":
                if children or node.bag:
                    return False
            elif node.kind == "introduce":
                if len(children) != 1 or node.vertex is None:
                    return False
                if node.bag != children[0].bag | {node.vertex}:
                    return False
                if node.vertex in children[0].bag:
                    return False
            elif node.kind == "forget":
                if len(children) != 1 or node.vertex is None:
                    return False
                if node.bag != children[0].bag - {node.vertex}:
                    return False
                if node.vertex not in children[0].bag:
                    return False
            elif node.kind == "join":
                if len(children) != 2:
                    return False
                if any(child.bag != node.bag for child in children):
                    return False
        return True

    def to_tree_decomposition(self) -> TreeDecomposition:
        """Flatten back to a plain :class:`TreeDecomposition` (for the
        generic validators)."""
        bags = [node.bag for node in self.nodes]
        edges = [
            (index, child)
            for index, node in enumerate(self.nodes)
            for child in node.children
        ]
        return TreeDecomposition(bags, edges)

    def __repr__(self) -> str:
        return (
            f"NiceTreeDecomposition({len(self.nodes)} nodes, "
            f"width {self.width})"
        )


def make_nice(decomposition: TreeDecomposition) -> NiceTreeDecomposition:
    """Normalize a (valid, connected-per-term) tree decomposition into a
    nice one of the same width.

    Strategy: root the decomposition at bag 0, binarize high-degree
    nodes with join chains, and splice introduce/forget chains between
    every parent/child bag pair; finish with a forget chain down to an
    empty-bag root and introduce chains up from empty-bag leaves.
    """
    if not decomposition.bags:
        return NiceTreeDecomposition([NiceNode("leaf", frozenset())], 0)

    adjacency: dict[int, list[int]] = {i: [] for i in range(len(decomposition.bags))}
    for u, v in decomposition.edges:
        adjacency[u].append(v)
        adjacency[v].append(u)

    nodes: list[NiceNode] = []

    def add(node: NiceNode) -> int:
        nodes.append(node)
        return len(nodes) - 1

    def leaf_chain_to(bag: frozenset) -> int:
        """leaf -> introduce ... introduce until *bag*."""
        current = add(NiceNode("leaf", frozenset()))
        so_far: set = set()
        for vertex in sorted(bag, key=repr):
            so_far.add(vertex)
            current = add(
                NiceNode("introduce", frozenset(so_far), [current], vertex=vertex)
            )
        return current

    def splice(child_index: int, from_bag: frozenset, to_bag: frozenset) -> int:
        """forget (from−to) then introduce (to−from), returning the top
        node index whose bag is *to_bag*."""
        current = child_index
        bag = set(from_bag)
        for vertex in sorted(from_bag - to_bag, key=repr):
            bag.discard(vertex)
            current = add(
                NiceNode("forget", frozenset(bag), [current], vertex=vertex)
            )
        for vertex in sorted(to_bag - from_bag, key=repr):
            bag.add(vertex)
            current = add(
                NiceNode("introduce", frozenset(bag), [current], vertex=vertex)
            )
        return current

    visited: set[int] = set()

    def build(bag_index: int, parent: int) -> int:
        """Return the index of a nice node with this bag's content."""
        visited.add(bag_index)
        bag = decomposition.bags[bag_index]
        child_tops = [
            splice(build(child, bag_index), decomposition.bags[child], bag)
            for child in adjacency[bag_index]
            if child != parent and child not in visited
        ]
        if not child_tops:
            return leaf_chain_to(bag)
        while len(child_tops) > 1:
            left = child_tops.pop()
            right = child_tops.pop()
            child_tops.append(add(NiceNode("join", bag, [left, right])))
        return child_tops[0]

    # forests: join components through empty-bag forget chains
    component_tops: list[int] = []
    for start in range(len(decomposition.bags)):
        if start in visited:
            continue
        top = build(start, -1)
        top = splice(top, decomposition.bags[start], frozenset())
        component_tops.append(top)
    root = component_tops[0]
    for other in component_tops[1:]:
        root = add(NiceNode("join", frozenset(), [root, other]))
    return NiceTreeDecomposition(nodes, root)

"""The compiled chase kernel: interned terms, columnar relations, and
join-plan evaluation (ISSUE 7).

The object-level engine evaluates rule bodies and endomorphism checks by
backtracking over :class:`~repro.logic.atoms.Atom` graphs — every inner
step hashes composite objects (``("var", name)`` tuples, ``(predicate,
position, term)`` index keys) and sorts candidate pools of full atoms.
This package removes the object layer from the hot loop:

* :mod:`~repro.logic.compiled.interner` — a process-global, bidirectional
  symbol table mapping predicates and terms to small ints (and back, so
  every result decompiles to the existing ``Atom``/``Term`` objects);
* :mod:`~repro.logic.compiled.relations` — columnar per-predicate
  relations storing atoms as flat int tuples with per-(position, value)
  postings, attached lazily to an :class:`~repro.logic.atomset.AtomSet`
  and maintained incrementally through its mutations;
* :mod:`~repro.logic.compiled.plans` — the compiled join evaluator: the
  *same* most-constrained-first backtracking search as
  :func:`repro.logic.homomorphism.homomorphisms`, replayed over int
  tuples with an explicit frame stack.  It replicates the indexed
  search's pools, ordering and tie-breaks exactly, so the two paths
  produce **identical witnesses** — the differential suite asserts
  equality of runs, not mere isomorphism.

The kernel sits behind the same switchboard as the indexed layer
(:func:`repro.logic.indexing.compiled_enabled`, scoped off by
``--no-compiled`` / :func:`repro.logic.indexing.no_compiled`); when it is
off — or a search needs a feature the kernel does not compile
(``injective`` isomorphism searches) — the object-level indexed search
runs unchanged.  See docs/PERFORMANCE.md ("Compiled kernel").
"""

from .interner import SymbolTable, symbol_table
from .plans import compiled_assignments, compiled_homomorphisms
from .relations import CompiledView, compiled_view

__all__ = [
    "SymbolTable",
    "symbol_table",
    "CompiledView",
    "compiled_view",
    "compiled_homomorphisms",
    "compiled_assignments",
]

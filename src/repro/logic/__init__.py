"""First-order substrate: terms, atoms, atomsets, substitutions,
homomorphisms, isomorphisms, cores, rules, and the text DSL.

Everything else in the library is built on this package; see Section 2 of
the paper for the corresponding definitions.
"""

from .atoms import Atom, Predicate, atom, make_term
from .atomset import AtomSet
from .coremaint import CoreMaintainer
from .cores import core_of, core_retraction, is_core, retracts_to
from .homomorphism import (
    count_homomorphisms,
    find_homomorphism,
    homomorphically_equivalent,
    homomorphisms,
    maps_into,
)
from .isomorphism import (
    automorphisms,
    canonical_form,
    find_isomorphism,
    invariant_fingerprint,
    isomorphic,
)
from .parser import ParseError, parse_atom, parse_atoms, parse_rule, parse_rules
from .rules import ExistentialRule, RuleSet
from .serialization import (
    dump_instance,
    dump_kb,
    dump_ruleset,
    load_instance,
    load_kb,
    load_kb_file,
    load_ruleset,
    save_kb,
)
from .substitution import Substitution
from .terms import Constant, FreshVariableSource, Term, Variable, is_constant, is_variable

__all__ = [
    "Atom",
    "AtomSet",
    "Constant",
    "CoreMaintainer",
    "ExistentialRule",
    "FreshVariableSource",
    "ParseError",
    "Predicate",
    "RuleSet",
    "Substitution",
    "Term",
    "Variable",
    "atom",
    "automorphisms",
    "canonical_form",
    "core_of",
    "dump_instance",
    "dump_kb",
    "dump_ruleset",
    "core_retraction",
    "count_homomorphisms",
    "find_homomorphism",
    "find_isomorphism",
    "homomorphically_equivalent",
    "homomorphisms",
    "invariant_fingerprint",
    "is_constant",
    "is_core",
    "is_variable",
    "isomorphic",
    "load_instance",
    "load_kb",
    "load_kb_file",
    "load_ruleset",
    "make_term",
    "maps_into",
    "parse_atom",
    "parse_atoms",
    "parse_rule",
    "parse_rules",
    "retracts_to",
    "save_kb",
]

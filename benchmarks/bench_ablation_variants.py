"""Ablation A1 — the chase-variant spectrum.

The introduction of the paper frames the variants by how much redundancy
they remove (oblivious: none; core: all).  This ablation runs all five
variants on one workload with genuine redundancy and tabulates the
trade-off: result size (smaller = more redundancy removed) versus rule
applications performed — the shape must be

    |core result| ≤ |frugal| ≤ |restricted| ≤ |semi-oblivious| ≤ |oblivious|.
"""

from repro.chase.engine import ChaseVariant, run_chase
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atoms, parse_rules
from repro.util import Table

from conftest import save_table


def redundancy_workload() -> KnowledgeBase:
    """Every person gets an invented contact and a concrete one; rules
    also duplicate edges through a helper predicate — plenty to fold."""
    return KnowledgeBase(
        parse_atoms("person(ann), person(bob), ref(ann, bob)"),
        parse_rules(
            """
            [ADouble]  person(X) -> ping(X, U), ping(X, V)
            [AInvent]  person(X) -> contact(X, C), reach(X, C)
            [ZConcrete] ref(X, Y) -> contact(X, Y), reach(X, Y)
            [ZMirror]  reach(X, Y) -> linked(X, Y)
            """
        ),
        name="redundancy-workload",
    )


def run_spectrum() -> list[tuple]:
    rows = []
    for variant in ChaseVariant.ALL:
        result = run_chase(redundancy_workload(), variant=variant, max_steps=200)
        rows.append(
            (
                variant,
                result.terminated,
                result.applications,
                len(result.final_instance),
                len(result.final_instance.variables()),
            )
        )
    return rows


def bench_ablation_variant_spectrum(benchmark):
    rows = benchmark.pedantic(run_spectrum, rounds=1, iterations=1)
    table = Table(
        ["variant", "terminated", "applications", "atoms", "nulls"],
        title="Ablation — redundancy removal across the five chase variants",
    )
    sizes = {}
    for variant, terminated, applications, atoms, nulls in rows:
        table.add_row(variant, terminated, applications, atoms, nulls)
        assert terminated, variant
        sizes[variant] = atoms
    assert sizes[ChaseVariant.CORE] <= sizes[ChaseVariant.FRUGAL]
    assert sizes[ChaseVariant.FRUGAL] <= sizes[ChaseVariant.RESTRICTED]
    assert sizes[ChaseVariant.RESTRICTED] <= sizes[ChaseVariant.SEMI_OBLIVIOUS]
    assert sizes[ChaseVariant.SEMI_OBLIVIOUS] <= sizes[ChaseVariant.OBLIVIOUS]
    extra = (
        "shape: result sizes are totally ordered by redundancy removal,\n"
        "core <= frugal <= restricted <= semi-oblivious <= oblivious."
    )
    save_table("ablation_variant_spectrum", table, extra)

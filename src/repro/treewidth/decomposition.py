"""Tree decompositions (Definition 4) and their validation.

A tree decomposition of an atomset ``A`` is a tree whose vertices ("bags")
are sets of terms such that (i) each atom's terms are jointly contained in
some bag and (ii) for each term, the bags containing it induce a connected
subtree.  The width is the largest bag size minus one.

:class:`TreeDecomposition` stores bags and tree edges explicitly and can
validate itself against either an atomset or a plain graph; the validator
is used pervasively in tests as the ground-truth check for every
treewidth algorithm in this package.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence, Union

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from .graph import Graph

__all__ = ["TreeDecomposition"]

BagId = int


class TreeDecomposition:
    """A tree decomposition: indexed bags plus tree edges.

    Parameters
    ----------
    bags:
        A sequence of term collections; bag ids are their positions.
    edges:
        Pairs of bag ids forming a tree (or forest; validation demands a
        forest whose connectivity respects condition (ii)).
    """

    __slots__ = ("bags", "edges")

    def __init__(
        self,
        bags: Sequence[Iterable[Hashable]],
        edges: Iterable[tuple[BagId, BagId]] = (),
    ):
        object.__setattr__(self, "bags", [frozenset(bag) for bag in bags])
        object.__setattr__(self, "edges", [tuple(edge) for edge in edges])
        for u, v in self.edges:
            if not (0 <= u < len(self.bags) and 0 <= v < len(self.bags)):
                raise ValueError(f"edge ({u}, {v}) references a missing bag")

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("TreeDecomposition is immutable")

    @property
    def width(self) -> int:
        """Largest bag size minus one; -1 for the empty decomposition
        (matching the convention ``tw(∅) = -1``)."""
        if not self.bags:
            return -1
        return max(len(bag) for bag in self.bags) - 1

    def __len__(self) -> int:
        return len(self.bags)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def is_tree(self) -> bool:
        """True iff the bag graph is acyclic (a forest).  Condition (ii)
        then forces the relevant connectivity per term."""
        parent: dict[BagId, BagId] = {i: i for i in range(len(self.bags))}

        def find(x: BagId) -> BagId:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in self.edges:
            ru, rv = find(u), find(v)
            if ru == rv:
                return False
            parent[ru] = rv
        return True

    def covers_atom(self, at: Atom) -> bool:
        """Condition (i) for one atom: some bag contains all its terms."""
        terms = at.term_set()
        return any(terms <= bag for bag in self.bags)

    def covers_edge(self, u: Hashable, v: Hashable) -> bool:
        """Graph version of condition (i): some bag contains both ends."""
        return any(u in bag and v in bag for bag in self.bags)

    def term_bags_connected(self, term: Hashable) -> bool:
        """Condition (ii) for one term: the bags containing it induce a
        connected subgraph of the (forest) bag tree."""
        holding = [i for i, bag in enumerate(self.bags) if term in bag]
        if len(holding) <= 1:
            return bool(holding)
        holding_set = set(holding)
        adjacency: dict[BagId, list[BagId]] = {i: [] for i in holding}
        for u, v in self.edges:
            if u in holding_set and v in holding_set:
                adjacency[u].append(v)
                adjacency[v].append(u)
        reached = {holding[0]}
        frontier = [holding[0]]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        return reached == holding_set

    def validate_for_atoms(self, atoms: Union[AtomSet, Iterable[Atom]]) -> bool:
        """Full Definition 4 check against an atomset."""
        atom_list = list(atoms)
        if not self.is_tree():
            return False
        if not all(self.covers_atom(at) for at in atom_list):
            return False
        terms: set[Hashable] = set()
        for at in atom_list:
            terms.update(at.term_set())
        return all(self.term_bags_connected(term) for term in terms)

    def validate_for_graph(self, graph: Graph) -> bool:
        """Check against a plain graph: every vertex in some bag, every
        edge covered, per-vertex connectivity, acyclicity."""
        if not self.is_tree():
            return False
        bag_union: set[Hashable] = set()
        for bag in self.bags:
            bag_union.update(bag)
        if not set(graph.vertices()) <= bag_union:
            return False
        for u, v in graph.edges():
            if not self.covers_edge(u, v):
                return False
        return all(self.term_bags_connected(v) for v in graph.vertices())

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition({len(self.bags)} bags, width {self.width})"
        )

"""Cores and retractions of finite atomsets.

A finite atomset ``A`` is a *core* if its only retraction is the identity
(Section 2).  Every finite atomset retracts to a core, unique up to
isomorphism, called *the* core of ``A``.

The core chase (Section 3) needs more than the core itself: Definition 1
requires each simplification ``σ_i`` to be a genuine *retraction* — an
endomorphism that is the identity on the terms of its image — and the
robust renaming of Definition 14 consumes the fibers ``σ⁻¹(X)`` of that
retraction.  :func:`core_retraction` therefore returns the folding
retraction, not just the retract.

Algorithm
---------
``core_retraction`` walks the variables once, in a deterministic order,
looking for an endomorphism of the current retract that avoids the
variable (found via homomorphism search with a forbidden image); the
composition of all such steps is an endomorphism of the original atomset
onto a retract from which no null can be removed — a core.  The
composition is then folded to idempotence (see
:meth:`Substitution.fold_to_retraction`), which makes it a retraction.

A *single* pass suffices because unremovability persists downward
through retractions: if no endomorphism of ``A`` avoids ``v`` and
``ρ`` is any retraction of ``A`` with ``v`` in its image, then no
endomorphism of ``ρ(A)`` avoids ``v`` either — such a ``g`` would make
``g ∘ ρ`` an endomorphism of ``A`` avoiding ``v``.  So a variable whose
search failed never needs retrying after later folds, and a variable
folded away needs no search at all.  (The incremental maintainer in
:mod:`repro.logic.coremaint` leans on the same lemma.)

The search is exponential in the worst case (deciding core-ness is
co-NP-hard) but behaves well on chase-sized instances.
"""

from __future__ import annotations

import time
from typing import Optional

from ..obs import observer as _observer_state
from . import homcache as _homcache
from . import indexing as _indexing
from .atomset import AtomSet
from .homomorphism import find_homomorphism
from .substitution import Substitution
from .terms import Variable

__all__ = ["is_core", "core_retraction", "core_of", "retracts_to"]


def _variable_order(atoms: AtomSet) -> list[Variable]:
    """The deterministic candidate order (by rank, then name) that makes
    core computation — and with it every core chase run — reproducible."""
    return sorted(atoms.variables(), key=lambda v: (v.rank, v.name))


def _removable_variable(atoms: AtomSet) -> Optional[Substitution]:
    """Find an endomorphism of *atoms* whose image avoids some variable."""
    for var in _variable_order(atoms):
        hom = find_homomorphism(atoms, atoms, forbidden_images=[var])
        if hom is not None:
            return hom
    return None


def is_core(atoms: AtomSet) -> bool:
    """True iff *atoms* is a core (no proper retraction exists).

    A finite atomset has a proper retraction iff it has an endomorphism
    missing some term of the atomset in its image; constants are always in
    the image (they are fixed), so only variables need checking.
    """
    return _removable_variable(atoms) is None


def core_retraction(atoms: AtomSet) -> Substitution:
    """A retraction of *atoms* whose image is a core of *atoms*.

    Returns the identity substitution when *atoms* is already a core.
    The result ``σ`` satisfies:

    * ``σ`` is a retraction of *atoms* (idempotent endomorphism);
    * ``σ(atoms)`` is a core.
    """
    observer = _observer_state.current
    started = time.perf_counter() if observer is not None else 0.0
    total, current = _fold_pass(atoms)
    if observer is not None:
        observer.core_retraction(
            atoms_before=len(atoms),
            atoms_after=len(current),
            variables_folded=len(atoms.variables()) - len(current.variables()),
            seconds=time.perf_counter() - started,
        )
    if not total:
        return total
    return total.fold_to_retraction(atoms)


def _fold_pass(
    atoms: AtomSet, _stats: Optional[dict] = None
) -> tuple[Substitution, AtomSet]:
    """One deterministic pass of variable folds over *atoms*.

    Returns ``(total, retract)`` where ``total`` is the raw composition
    of all fold endomorphisms (not yet idempotent) and ``retract`` is its
    image, a core of *atoms*.  The candidate order is hoisted out of the
    loop: by downward persistence (module docstring) a variable whose
    search fails stays unremovable in every later retract, and a variable
    folded away is simply skipped — no variable is ever searched twice.

    ``_stats`` (when a dict) receives ``candidates_tried`` and ``folds``
    increments — the incremental maintainer's telemetry hook.
    """
    current = atoms
    total = Substitution.identity()
    for var in _variable_order(atoms):
        if var not in current.variables():
            continue  # folded away by an earlier step
        if _stats is not None:
            _stats["candidates_tried"] += 1
        shrink = find_homomorphism(current, current, forbidden_images=[var])
        if shrink is None:
            continue  # unremovable — for good, by downward persistence
        if _stats is not None:
            _stats["folds"] += 1
        total = shrink.compose(total)
        shrunk = shrink.apply(current)
        # The intermediate retract is replaced for good; drop its memo
        # entries (the caller's input stays cached — it is still live).
        if current is not atoms and _indexing.hom_memo_enabled():
            _homcache.get_cache().invalidate(current.fingerprint())
        current = shrunk
    return total, current


def core_of(atoms: AtomSet) -> AtomSet:
    """The core of *atoms* (the retract of :func:`core_retraction`)."""
    return core_retraction(atoms).apply(atoms)


def retracts_to(atoms: AtomSet, target: AtomSet) -> Optional[Substitution]:
    """A retraction of *atoms* with image exactly *target*, or None.

    *target* must be a subset of *atoms*.  Used by tests to verify the
    paper's concrete claims of the form "``S^h_k`` retracts to
    ``C^h_{k+1}``" (Section 6).
    """
    if not target.issubset(atoms):
        return None
    fixed = Substitution(
        {t: t for t in target.terms() if isinstance(t, Variable)}
    )
    hom = find_homomorphism(atoms, target, partial=fixed)
    if hom is None:
        return None
    retraction = hom.drop_trivial()
    if retraction.apply(atoms) == target:
        return retraction
    return None

"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.kbs.generators import grid_instance
from repro.kbs.witnesses import manager_kb, transitive_closure_kb
from repro.logic.serialization import dump_instance, save_kb
from repro.obs import get_observer
from repro.obs.tracer import read_trace


@pytest.fixture()
def kb_file(tmp_path):
    path = tmp_path / "tc.repro"
    save_kb(transitive_closure_kb(3), path)
    return str(path)


@pytest.fixture()
def manager_file(tmp_path):
    path = tmp_path / "mgr.repro"
    save_kb(manager_kb(), path)
    return str(path)


class TestChaseCommand:
    def test_terminating_run(self, kb_file, capsys):
        code = main(["chase", kb_file, "--variant", "core", "--steps", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "terminated" in out
        assert "e(v0, v3)" in out

    def test_quiet_mode(self, kb_file, capsys):
        main(["chase", kb_file, "--quiet"])
        out = capsys.readouterr().out
        assert "e(v0, v3)" not in out
        assert out.startswith("#")

    def test_budget_exhaustion_reported(self, manager_file, capsys):
        main(["chase", manager_file, "--steps", "5"])
        assert "budget-exhausted" in capsys.readouterr().out

    def test_variant_validated(self, kb_file):
        with pytest.raises(SystemExit):
            main(["chase", kb_file, "--variant", "turbo"])

    def test_summary_reports_retractions(self, kb_file, capsys):
        main(["chase", kb_file, "--variant", "core", "--quiet"])
        out = capsys.readouterr().out
        assert "retractions" in out
        assert "atoms retracted" in out

    def test_json_summary(self, kb_file, capsys):
        code = main(["chase", kb_file, "--variant", "core", "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["variant"] == "core"
        assert summary["terminated"] is True
        assert summary["applications"] >= 1
        assert summary["retractions"] >= 0
        assert summary["atoms_retracted"] >= 0
        assert "e(v0, v3)" in summary["instance"]

    def test_json_quiet_omits_instance(self, kb_file, capsys):
        main(["chase", kb_file, "--json", "--quiet"])
        summary = json.loads(capsys.readouterr().out)
        assert "instance" not in summary

    def test_trace_writes_jsonl(self, kb_file, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        code = main(
            [
                "chase",
                kb_file,
                "--variant",
                "core",
                "--quiet",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        events = read_trace(str(trace_path))
        kinds = {event["kind"] for event in events}
        assert "chase_step_finished" in kinds
        assert "core_retraction" in kinds
        # the observer must not leak past the command
        assert get_observer() is None

    def test_metrics_table_printed(self, kb_file, capsys):
        main(["chase", kb_file, "--variant", "core", "--quiet", "--metrics"])
        out = capsys.readouterr().out
        assert "# metrics" in out
        assert "chase.steps" in out
        assert "hom.searches" in out


class TestEntailCommand:
    def test_entailed_returns_zero(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(ann, X)"])
        assert code == 0
        assert "ENTAILED" in capsys.readouterr().out

    def test_not_entailed_returns_one(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(X, ann)"])
        assert code == 1
        assert "NOT ENTAILED" in capsys.readouterr().out

    def test_undecided_returns_two(self, tmp_path, capsys):
        # force undecidedness with starvation budgets on a KB whose
        # countermodels are out of reach for a 1-element domain
        from repro.kbs.staircase import staircase_kb

        path = tmp_path / "kh.repro"
        save_kb(staircase_kb(), path)
        code = main(
            [
                "entail",
                str(path),
                "f(X), c(X)",
                "--chase-budget",
                "1",
                "--model-budget",
                "1",
            ]
        )
        assert code == 2
        assert "UNDECIDED" in capsys.readouterr().out


class TestClassifyCommand:
    def test_reports_all_criteria(self, kb_file, capsys):
        code = main(["classify", kb_file])
        out = capsys.readouterr().out
        assert code == 0
        for needle in ("weakly acyclic", "guarded", "rule-acyclic", "fes"):
            assert needle in out

    def test_fes_certificate_shown(self, kb_file, capsys):
        main(["classify", kb_file])
        assert "core chase terminated" in capsys.readouterr().out

    def test_deprecation_warning_on_stderr_only(self, kb_file, capsys):
        code = main(["classify", kb_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "deprecated" in captured.err
        assert "repro analyze" in captured.err
        assert "deprecated" not in captured.out


class TestAnalyzeCommand:
    def test_reports_verdict_and_strategy(self, kb_file, capsys):
        code = main(["analyze", kb_file])
        out = capsys.readouterr().out
        assert code == 0
        for needle in (
            "weakly acyclic",
            "linear termination",
            "k-bounded",
            "strategy: terminating-fast",
            "reason:",
        ):
            assert needle in out

    def test_bts_ruleset_routes_rewrite_first(self, manager_file, capsys):
        code = main(["analyze", manager_file, "--steps", "10", "--k-max", "3"])
        out = capsys.readouterr().out
        assert code == 0
        # Linear+guarded non-terminating ruleset: rewriting first, the
        # bts-core rung as the fallback, and the rewritability row set.
        assert "strategy: rewrite-first" in out
        assert "falling back to bts-core" in out
        assert "rewritable: yes" in out
        assert "diverges" in out

    def test_json_shape(self, kb_file, capsys):
        code = main(["analyze", kb_file, "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["verdict"]["weakly_acyclic"] is True
        assert report["terminating"] is True
        assert report["strategy"]["name"] == "terminating-fast"
        assert report["strategy"]["model_budget"] == 0

    def test_subsumes_classify_json_fields(self, kb_file, capsys):
        main(["classify", kb_file, "--json"])
        classify = json.loads(capsys.readouterr().out)
        main(["analyze", kb_file, "--json"])
        analyze = json.loads(capsys.readouterr().out)
        for field in (
            "weakly_acyclic",
            "guarded",
            "frontier_guarded",
            "sticky",
            "rule_acyclic",
        ):
            assert analyze["verdict"][field] == classify[field]
        # analyze skips the instance probes once termination is already
        # syntactically certified; classify always runs the fes probe.
        assert analyze["terminating"] is True
        assert analyze["verdict"]["fes_applications"] is None
        assert classify["fes_applications"] is not None


class TestTreewidthCommand:
    def test_grid_width(self, tmp_path, capsys):
        path = tmp_path / "grid.atoms"
        path.write_text(dump_instance(grid_instance(3)))
        code = main(["treewidth", str(path)])
        assert code == 0
        assert "treewidth: 3" in capsys.readouterr().out


class TestEntailClassifyJson:
    def test_entail_json_verdict(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(ann, X)", "--json"])
        verdict = json.loads(capsys.readouterr().out)
        assert code == 0
        assert verdict["entailed"] is True
        assert verdict["method"]

    def test_entail_json_exit_codes(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(X, ann)", "--json"])
        verdict = json.loads(capsys.readouterr().out)
        assert code == 1
        assert verdict["entailed"] is False

    def test_classify_json_report(self, kb_file, capsys):
        code = main(["classify", kb_file, "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["weakly_acyclic"] is True
        assert report["fes_applications"] is not None

    def test_classify_json_reports_consumed_budget(self, kb_file, capsys):
        main(["classify", kb_file, "--json"])
        report = json.loads(capsys.readouterr().out)
        # On success the consumed budget is exactly the certificate, not
        # the --steps cap.
        assert report["fes_budget_consumed"] == report["fes_applications"]
        assert report["fes_budget_consumed"] < report["fes_budget"]

    def test_serve_planner_flags_parse(self):
        parser = build_parser()
        assert parser.parse_args(["serve"]).no_planner is False
        assert parser.parse_args(["serve", "--no-planner"]).no_planner is True


class TestStatsCommand:
    @pytest.fixture()
    def trace_file(self, kb_file, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(
            ["chase", kb_file, "--variant", "core", "--quiet", "--trace", str(path)]
        )
        capsys.readouterr()  # drop the chase output
        return str(path)

    def test_tables_rendered(self, trace_file, capsys):
        code = main(["stats", trace_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "Trace events" in out
        assert "Totals" in out
        assert "core_retraction" in out

    def test_json_summary(self, trace_file, capsys):
        code = main(["stats", trace_file, "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["core"]["calls"] == summary["chase"]["steps"] + 1
        assert summary["chase"]["series"], "per-step series must be present"

    def test_core_maintenance_aggregated(self, trace_file, capsys):
        """``repro stats`` folds the maintainer's per-call telemetry into
        skip-hit ratio and candidates-per-step aggregates."""
        code = main(["stats", trace_file, "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        maint = summary["core_maintenance"]
        assert maint["calls"] == summary["core"]["calls"]
        assert maint["calls"] > 0
        assert maint["incremental"] >= 1
        assert maint["candidates_tried"] >= 0
        assert maint["skip_hits"] >= 0
        if maint["skip_hit_ratio"] is not None:
            assert 0.0 <= maint["skip_hit_ratio"] <= 1.0
        assert maint["candidates_per_step"] >= 0

        code = main(["stats", trace_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "core maintenance" in out
        assert "skip hits" in out
        assert "candidates tried" in out

    def test_no_core_maint_trace_has_no_maintenance_events(
        self, kb_file, tmp_path, capsys
    ):
        """With ``--no-core-maint`` the run falls back to from-scratch
        retraction: no maintenance events, zero aggregates."""
        path = tmp_path / "naive.jsonl"
        main(
            [
                "chase",
                kb_file,
                "--variant",
                "core",
                "--quiet",
                "--no-core-maint",
                "--trace",
                str(path),
            ]
        )
        capsys.readouterr()
        kinds = {event["kind"] for event in read_trace(str(path))}
        assert "core_retraction" in kinds
        assert "core_maintenance" not in kinds
        code = main(["stats", str(path), "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["core_maintenance"]["calls"] == 0


class TestTraceCommand:
    @pytest.fixture()
    def trace_dir(self, tmp_path):
        """Two single-trace span trees written the way the serving tier
        writes them: one JSONL sink per writer under one directory."""
        from repro.obs import JsonlTracer, TracingObserver, span

        directory = tmp_path / "trace"
        directory.mkdir()
        with open(directory / "server.jsonl", "w") as sink:
            observer = TracingObserver(JsonlTracer(sink))
            with span("service_request", observer=observer, op="entail") as a:
                with span("service_job", observer=observer):
                    pass
            with span("service_request", observer=observer, op="chase") as b:
                pass
        return directory, a.trace_id, b.trace_id

    def test_lists_traces_without_an_id(self, trace_dir, capsys):
        directory, first, second = trace_dir
        code = main(["trace", "--dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace_id" in out
        assert first in out and second in out

    def test_renders_one_trace_as_a_tree(self, trace_dir, capsys):
        directory, first, _ = trace_dir
        code = main(["trace", first, "--dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "service_request" in out and "service_job" in out
        assert f"trace {first}" in out

    def test_json_format_round_trips(self, trace_dir, capsys):
        directory, first, second = trace_dir
        code = main(
            ["trace", first, "--dir", str(directory), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["trace_id"] == first and payload["spans"] == 2

        code = main(
            ["trace", "--all", "--dir", str(directory), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [tree["trace_id"] for tree in payload] == [first, second]

    def test_unknown_id_exits_2_and_lists_available(self, trace_dir, capsys):
        directory, first, _ = trace_dir
        code = main(["trace", "f" * 16, "--dir", str(directory)])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown trace id" in captured.err
        assert first in captured.err  # the available ids are suggested

    def test_missing_dir_exits_2(self, tmp_path, capsys):
        code = main(["trace", "--dir", str(tmp_path / "nope")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_lines_warn_but_do_not_fail(self, trace_dir, capsys):
        directory, first, _ = trace_dir
        (directory / "torn.jsonl").write_text('{"kind": "span_open"\n')
        code = main(["trace", first, "--dir", str(directory)])
        captured = capsys.readouterr()
        assert code == 0
        assert "skipped 1 malformed line" in captured.err
        assert "service_job" in captured.out


class TestTopCommand:
    STATS = {
        "requests": 5,
        "coalesced": 1,
        "jobs": 4,
        "warm_hits": 2,
        "errors": 0,
        "retries": 1,
        "pool_rebuilds": 1,
        "snapshots_evicted": 0,
        "pending": 0,
        "inflight": 0,
        "warm_hit_ratio": 0.5,
        "latency": {
            "entail": {
                "ok": {
                    "count": 4,
                    "mean": 0.25,
                    "p50": 0.2,
                    "p95": 0.4,
                    "p99": 0.4,
                },
                "warm": {
                    "count": 2,
                    "mean": 0.1,
                    "p50": 0.1,
                    "p95": 0.1,
                    "p99": 0.1,
                },
            }
        },
        "latency_window": {"capacity": 512, "samples": 4},
    }

    def test_render_top_shows_counters_and_latency(self):
        from repro.cli import _render_top

        body = _render_top(self.STATS)
        for counter in ("requests", "retries", "pool_rebuilds"):
            assert counter in body
        assert "last 4/512 jobs" in body
        assert "entail" in body and "p95" in body
        # one row per populated class, in class order
        ok_index = body.index("ok")
        warm_index = body.index("warm", ok_index)
        assert ok_index < warm_index

    def test_render_top_tolerates_a_bare_payload(self):
        from repro.cli import _render_top

        body = _render_top({"requests": 0, "ok": True})
        assert "requests" in body
        assert "p95" not in body  # no latency table without samples

    def test_top_against_a_dead_port_exits_1(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        code = main(["top", "--port", str(port), "--once"])
        assert code == 1
        assert "cannot poll" in capsys.readouterr().err


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert "chase" in parser.format_help()
        assert "trace" in parser.format_help()
        assert "top" in parser.format_help()

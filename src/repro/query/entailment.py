"""CQ entailment procedures, including the Theorem-1-style race.

Three procedures, in increasing generality:

1. :func:`entails_via_terminating_chase` — when the core chase
   terminates, its result is a finite universal model and entailment is
   a single homomorphism test (the fes situation).
2. :func:`chase_entails_prefix` — the "yes" semi-procedure: run a fair
   chase and test the query against the natural aggregation after every
   step (Proposition 1(3): ``K ⊨ Q`` iff ``Q`` maps into ``D*`` for any
   fair derivation, and a mapping into a finite prefix certifies it).
3. :func:`decide_entailment` — the race of Theorem 1: interleave the
   "yes" side (2) with the "no" side (a bounded finite-countermodel
   search standing in for the Courcelle machinery; see
   :mod:`repro.query.modelfinder` and DESIGN.md for the substitution
   argument).  Returns a verdict with the certificate that settled it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..chase.engine import ChaseVariant, run_chase
from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from .cq import ConjunctiveQuery
from .modelfinder import find_countermodel

__all__ = [
    "EntailmentVerdict",
    "entails_via_terminating_chase",
    "chase_entails_prefix",
    "decide_entailment",
]


@dataclass
class EntailmentVerdict:
    """The outcome of a decision attempt.

    ``entailed`` is None when neither side settled within its budget
    (a genuine possibility: the procedure simulates two semi-decision
    procedures with finite budgets).  ``incomplete`` marks verdicts cut
    short by a ``should_stop`` deadline rather than by exhausting the
    budgets — a degraded answer in the service sense (a ``True`` is
    still a sound certificate even then).
    """

    entailed: Optional[bool]
    method: str
    chase_steps: int = 0
    countermodel: Optional[AtomSet] = None
    witness_instance: Optional[AtomSet] = None
    incomplete: bool = False

    @property
    def decided(self) -> bool:
        return self.entailed is not None


def entails_via_terminating_chase(
    kb: KnowledgeBase, query: ConjunctiveQuery, max_steps: int = 500
) -> EntailmentVerdict:
    """Decide entailment through a terminating core chase.

    If the core chase reaches a fixpoint, the final instance is the
    (unique, smallest) finite universal model and the answer is exact;
    otherwise the verdict is undecided.
    """
    result = run_chase(kb, variant=ChaseVariant.CORE, max_steps=max_steps)
    if not result.terminated:
        return EntailmentVerdict(None, "core-chase-budget-exhausted", max_steps)
    holds = query.holds_in(result.final_instance)
    return EntailmentVerdict(
        holds,
        "terminating-core-chase",
        result.applications,
        witness_instance=result.final_instance,
    )


def chase_entails_prefix(
    kb: KnowledgeBase,
    query: ConjunctiveQuery,
    max_steps: int = 200,
    variant: str = ChaseVariant.RESTRICTED,
    should_stop: Optional[Callable[[], bool]] = None,
) -> EntailmentVerdict:
    """The "yes" semi-procedure: chase fairly and test the query against
    the growing natural aggregation.

    A hit certifies ``K ⊨ Q`` (the aggregation prefix is universal —
    Proposition 1(1) — so the query maps onward into every model), and
    the chase halts as soon as one fires — nothing past the certificate
    changes the answer.  No hit within budget leaves the question open
    unless the chase terminated, in which case the answer is an exact
    "no".  ``should_stop`` (e.g. a :class:`repro.service.deadline.
    Deadline`) cuts the run short; a stop before any verdict returns an
    undecided result flagged ``incomplete``.
    """
    aggregation = AtomSet()
    hit = [False]
    steps_until_hit = [0]

    def on_step(step) -> None:
        if hit[0]:
            return
        added = aggregation.update(step.instance)
        if added == 0 and step.index > 0:
            # The aggregation is unchanged, so the previous (negative)
            # query test still stands — and even when a later step does
            # grow it back to a previously tested value, the
            # homomorphism memo (repro.logic.homcache) answers the
            # repeat test from its fingerprint-keyed cache.
            return
        if query.holds_in(aggregation):
            hit[0] = True
            steps_until_hit[0] = step.index

    def stopper() -> bool:
        return hit[0] or (should_stop is not None and should_stop())

    result = run_chase(
        kb,
        variant=variant,
        max_steps=max_steps,
        on_step=on_step,
        should_stop=stopper,
    )
    if hit[0]:
        return EntailmentVerdict(True, "chase-prefix-hit", steps_until_hit[0])
    if result.terminated:
        return EntailmentVerdict(
            False,
            "chase-fixpoint-miss",
            result.applications,
            witness_instance=result.final_instance,
        )
    if result.stopped:
        return EntailmentVerdict(
            None, "chase-stopped", result.applications, incomplete=True
        )
    return EntailmentVerdict(None, "chase-budget-exhausted", result.applications)


def decide_entailment(
    kb: KnowledgeBase,
    query: ConjunctiveQuery,
    chase_budget: int = 200,
    model_domain_budget: int = 8,
    chase_variant: str = ChaseVariant.RESTRICTED,
    should_stop: Optional[Callable[[], bool]] = None,
) -> EntailmentVerdict:
    """The Theorem-1 race, executably.

    Runs the "yes" semi-procedure (fair chase + query test per step) and,
    if it does not fire, the "no" side (iterative-deepening finite
    countermodel search).  Either side's success is a sound certificate.
    The race can end undecided when both budgets run out — unavoidable,
    since the exact procedure of Theorem 1 is not executable (see
    DESIGN.md).  A ``should_stop`` deadline that fires mid-race returns
    the soundest verdict reached so far, flagged ``incomplete``; the
    countermodel side is skipped once the deadline has expired.
    """
    yes = chase_entails_prefix(
        kb,
        query,
        max_steps=chase_budget,
        variant=chase_variant,
        should_stop=should_stop,
    )
    if yes.decided or yes.incomplete:
        return yes
    if should_stop is not None and should_stop():
        return EntailmentVerdict(
            None, "chase-stopped", yes.chase_steps, incomplete=True
        )
    no = find_countermodel(kb, query, max_domain=model_domain_budget)
    if no.found:
        return EntailmentVerdict(
            False,
            "finite-countermodel",
            yes.chase_steps,
            countermodel=no.model,
        )
    return EntailmentVerdict(None, "race-undecided", yes.chase_steps)

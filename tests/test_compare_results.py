"""Tier-1 tests for the perf-regression gate script.

``benchmarks/compare_results.py`` is stdlib-only and not part of the
installed package, so it is loaded here by file path.  The cases pin the
three distinct gate verdicts: clean pass, timing regression, and —
added with the incremental core maintainer — *semantic drift*, where a
current row matches a baseline row on everything except the behaviour
counts (applications/retractions/atoms_out) and must fail with its own
error message rather than an opaque "row missing".

The floor mode added with the compiled kernel (``--min-speedup``, plus
``--baseline-name``/``--ignore-fields``/``--only-rows``) is pinned in
:class:`TestFloorMode`: both verdict directions, drift detection inside
floor mode, and the cross-engine table pairing the compiled CI gate
relies on.
"""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "compare_results.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("compare_results", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _table(rows):
    return {
        "name": "perf_demo",
        "headers": ["workload", "steps", "applications", "retractions", "seconds"],
        "rows": rows,
        "schema": 1,
    }


ROW = {
    "workload": "elevator",
    "steps": 35,
    "applications": 35,
    "retractions": 0,
    "seconds": 4.0,
}


def _write_pair(tmp_path, baseline_rows, current_rows):
    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    baselines.mkdir()
    results.mkdir()
    (baselines / "perf_demo.json").write_text(json.dumps(_table(baseline_rows)))
    (results / "perf_demo.json").write_text(json.dumps(_table(current_rows)))
    return ["--baselines", str(baselines), "--results", str(results)]


def _run(gate, argv, capsys):
    code = gate.main(argv)
    captured = capsys.readouterr()
    return code, captured.out + captured.err


class TestGateVerdicts:
    def test_clean_pass(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 0.2}])
        code, output = _run(gate, argv, capsys)
        assert code == 0
        assert "perf gate clean" in output

    def test_slowdown_fails_with_ratio(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 9.0}])
        code, output = _run(gate, argv, capsys)
        assert code == 1
        assert "2.25x" in output
        assert "SEMANTIC DRIFT" not in output

    def test_count_drift_fails_with_distinct_message(self, gate, tmp_path, capsys):
        """Same workload, same timing, different application/retraction
        counts: the gate must call out behaviour change, not slowdown."""
        drifted = {**ROW, "applications": 36, "retractions": 1}
        argv = _write_pair(tmp_path, [ROW], [drifted])
        code, output = _run(gate, argv, capsys)
        assert code == 1
        assert "SEMANTIC DRIFT" in output
        assert "applications 35 -> 36" in output
        assert "retractions 0 -> 1" in output
        assert "row missing" not in output

    def test_genuinely_missing_row_is_not_drift(self, gate, tmp_path, capsys):
        other = {**ROW, "workload": "staircase"}
        argv = _write_pair(tmp_path, [ROW], [other])
        code, output = _run(gate, argv, capsys)
        assert code == 1
        assert "row missing from current results" in output
        assert "SEMANTIC DRIFT" not in output


class TestFloorMode:
    """``--min-speedup`` (ISSUE 7): the compiled CI gate's inverse
    check — fail rows that are not *fast enough*, not rows that got
    slower."""

    def test_meeting_the_floor_passes(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 0.5}])
        code, output = _run(gate, argv + ["--min-speedup", "5"], capsys)
        assert code == 0
        assert "8.00x speedup" in output
        assert "perf gate clean" in output

    def test_missing_the_floor_fails(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 2.0}])
        code, output = _run(gate, argv + ["--min-speedup", "5"], capsys)
        assert code == 1
        assert "2.00x speedup" in output
        assert "floor 5x" in output
        assert "outside the configured speedup bounds" in output

    def test_floor_mode_still_reports_semantic_drift(self, gate, tmp_path, capsys):
        """A blazing-fast row that computes something else is drift,
        not a pass — the count fields stay in row identity."""
        drifted = {**ROW, "applications": 36, "seconds": 0.1}
        argv = _write_pair(tmp_path, [ROW], [drifted])
        code, output = _run(gate, argv + ["--min-speedup", "2"], capsys)
        assert code == 1
        assert "SEMANTIC DRIFT" in output

    def test_baseline_name_compares_cross_table(self, gate, tmp_path, capsys):
        """--baseline-name diffs one results table against a different
        reference table (the same-machine indexed-vs-compiled gate);
        --ignore-fields drops the engine column that would otherwise
        keep the rows from matching."""
        baselines = tmp_path / "tables"
        baselines.mkdir()
        indexed = _table([{**ROW, "engine": "indexed"}])
        compiled = _table([{**ROW, "seconds": 1.0, "engine": "compiled"}])
        (baselines / "perf_demo_indexed.json").write_text(json.dumps(indexed))
        (baselines / "perf_demo_compiled.json").write_text(json.dumps(compiled))
        code, output = _run(
            gate,
            [
                "perf_demo_compiled",
                "--baselines", str(baselines),
                "--results", str(baselines),
                "--baseline-name", "perf_demo_indexed",
                "--min-speedup", "1.5",
                "--ignore-fields", "engine",
            ],
            capsys,
        )
        assert code == 0
        assert "4.00x speedup" in output

    def test_engine_field_mismatch_without_ignore(self, gate, tmp_path, capsys):
        """Without --ignore-fields the engine column keeps cross-engine
        rows apart — by design, so a stale comparison fails loudly."""
        baselines = tmp_path / "tables"
        baselines.mkdir()
        indexed = _table([{**ROW, "engine": "indexed"}])
        compiled = _table([{**ROW, "seconds": 1.0, "engine": "compiled"}])
        (baselines / "perf_demo_indexed.json").write_text(json.dumps(indexed))
        (baselines / "perf_demo_compiled.json").write_text(json.dumps(compiled))
        code, output = _run(
            gate,
            [
                "perf_demo_compiled",
                "--baselines", str(baselines),
                "--results", str(baselines),
                "--baseline-name", "perf_demo_indexed",
                "--min-speedup", "1.5",
            ],
            capsys,
        )
        assert code == 1
        assert "row missing" in output

    def test_baseline_name_requires_single_table(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [ROW])
        code, output = _run(
            gate,
            argv + ["--baseline-name", "other", "perf_demo", "perf_demo"],
            capsys,
        )
        assert code == 1
        assert "exactly one table name" in output

    def test_only_rows_filters_the_gate(self, gate, tmp_path, capsys):
        """--only-rows gates just the rows whose label matches; the
        too-slow staircase row here is simply not gated."""
        fast = {**ROW, "seconds": 4.0}
        slow = {**ROW, "workload": "staircase", "seconds": 4.0}
        argv = _write_pair(
            tmp_path,
            [fast, slow],
            [{**fast, "seconds": 1.0}, {**slow, "seconds": 3.9}],
        )
        code, output = _run(
            gate,
            argv + ["--min-speedup", "2", "--only-rows", "elevator"],
            capsys,
        )
        assert code == 0
        assert "staircase" not in output
        assert "4.00x speedup" in output


class TestCeilingMode:
    """``--max-ratio`` (ISSUE 8): the snapshot CI gate's cost ceiling —
    fail rows whose current/baseline ratio exceeds Y, so an incremental
    resume must stay cheaper than a fraction of the cold chase even on
    rows with no headroom for a speedup floor."""

    def test_under_the_ceiling_passes(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 2.0}])
        code, output = _run(gate, argv + ["--max-ratio", "0.8"], capsys)
        assert code == 0
        assert "2.00x speedup" in output
        assert "perf gate clean" in output

    def test_over_the_ceiling_fails(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 3.6}])
        code, output = _run(gate, argv + ["--max-ratio", "0.8"], capsys)
        assert code == 1
        assert "ratio 0.90, ceiling 0.8" in output
        assert "outside the configured speedup bounds" in output

    def test_floor_and_ceiling_compose(self, gate, tmp_path, capsys):
        """A row must clear the floor *and* stay under the ceiling: here
        the speedup (1.33x) satisfies the 1.2x floor but the 0.75 ratio
        breaks the 0.6 ceiling, so the composed gate fails."""
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 3.0}])
        code, output = _run(
            gate,
            argv + ["--min-speedup", "1.2", "--max-ratio", "0.6"],
            capsys,
        )
        assert code == 1
        assert "floor 1.2x, ceiling 0.6" in output

    def test_ceiling_mode_still_reports_semantic_drift(self, gate, tmp_path, capsys):
        """A dirt-cheap row that resumed into different work is drift,
        not a pass — count fields stay in row identity in every mode."""
        drifted = {**ROW, "applications": 36, "seconds": 0.1}
        argv = _write_pair(tmp_path, [ROW], [drifted])
        code, output = _run(gate, argv + ["--max-ratio", "0.8"], capsys)
        assert code == 1
        assert "SEMANTIC DRIFT" in output


class TestDriftDetector:
    def test_find_count_drift_reports_moved_fields(self, gate):
        base = (("workload", "elevator"), ("steps", 35), ("applications", 35))
        cur = (("workload", "elevator"), ("steps", 35), ("applications", 36))
        drift = gate.find_count_drift(base, [cur])
        assert drift == {"applications": (35, 36)}

    def test_find_count_drift_ignores_other_workloads(self, gate):
        base = (("workload", "elevator"), ("applications", 35))
        cur = (("workload", "staircase"), ("applications", 36))
        assert gate.find_count_drift(base, [cur]) is None

"""A bounded finite model finder for refuting CQ entailment.

Theorem 1's "no" side checks satisfiability of ``F ∧ Σ ∧ ¬Q`` over
structures of treewidth ≤ k via Courcelle-style MSO machinery — far
beyond what can be executed.  The executable substitute (documented in
DESIGN.md) is a *finite countermodel search*: find a finite model of
``(F, Σ)`` into which ``Q`` does not map.  This is **sound** for
refutation (any model avoiding ``Q`` proves ``K ⊭ Q``) and complete for
the KBs exercised in the experiments, all of which admit small "capped"
finite models (see :mod:`repro.kbs`).

Search strategy: depth-first chase-with-reuse.  States are instances;
the successor relation picks one unsatisfied trigger and satisfies it in
every possible way — by mapping each existential head variable either to
an *existing* term or to a *fresh* one (subject to the domain budget),
reuse-first to bias toward small models.  A branch is pruned as soon as
``Q`` maps into the partial instance (monotone: adding atoms can only
preserve the homomorphism), which is what makes the search a *Q-avoiding*
model finder rather than a generic one.  A fixpoint (no unsatisfied
trigger) is a model, and ``Q`` does not map into it by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Optional

from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..logic.substitution import Substitution
from ..logic.terms import FreshVariableSource, Term
from ..chase.trigger import Trigger, triggers
from .cq import ConjunctiveQuery

__all__ = ["ModelSearchResult", "find_countermodel", "find_finite_model"]


@dataclass
class ModelSearchResult:
    """Outcome of a model search."""

    model: Optional[AtomSet]
    nodes_explored: int
    exhausted: bool
    """True when the whole bounded search space was exhausted without a
    model — for a countermodel search this certifies that no model within
    the given domain budget avoids the query (not that ``K ⊨ Q``)."""

    @property
    def found(self) -> bool:
        return self.model is not None


def _first_unsatisfied(kb: KnowledgeBase, instance: AtomSet) -> Optional[Trigger]:
    for rule in kb.rules:
        for trigger in triggers(rule, instance):
            if not trigger.is_satisfied_in(instance):
                return trigger
    return None


def _head_completions(
    trigger: Trigger,
    instance: AtomSet,
    fresh: FreshVariableSource,
    domain_budget: int,
) -> Iterable[Substitution]:
    """All ways to satisfy *trigger*'s head: each existential variable is
    mapped to an existing term (reuse) or, if the domain budget allows,
    to a fresh null.  Reuse options come first."""
    rule = trigger.rule
    base = {var: trigger.mapping.apply_term(var) for var in rule.frontier}
    existentials = sorted(rule.existential, key=lambda v: v.name)
    existing = sorted(instance.terms(), key=lambda t: (t.name,))
    budget_left = domain_budget - len(instance.terms())
    option_lists: list[list[Term]] = []
    for var in existentials:
        options: list[Term] = list(existing)
        if budget_left > 0:
            options.append(fresh.fresh(hint=var))
        option_lists.append(options)
    if not existentials:
        yield Substitution(base)
        return
    for combination in product(*option_lists):
        mapping = dict(base)
        for var, term in zip(existentials, combination):
            mapping[var] = term
        yield Substitution(mapping)


def find_finite_model(
    kb: KnowledgeBase,
    domain_budget: int = 6,
    avoid: Optional[ConjunctiveQuery] = None,
    node_budget: int = 20_000,
) -> ModelSearchResult:
    """Search for a finite model of *kb* with at most *domain_budget*
    terms, optionally avoiding a query.

    Returns a :class:`ModelSearchResult`; ``result.model`` (if found) is
    a genuine model — callers can re-verify with
    :meth:`KnowledgeBase.is_model` — into which ``avoid`` does not map.
    """
    fresh = FreshVariableSource(prefix="_m")
    nodes = [0]
    budget_hit = [False]

    def q_maps(instance: AtomSet) -> bool:
        return avoid is not None and avoid.holds_in(instance)

    def search(instance: AtomSet) -> Optional[AtomSet]:
        if nodes[0] >= node_budget:
            budget_hit[0] = True
            return None
        nodes[0] += 1
        if q_maps(instance):
            return None
        trigger = _first_unsatisfied(kb, instance)
        if trigger is None:
            return instance
        for completion in _head_completions(
            trigger, instance, fresh, domain_budget
        ):
            extended = instance.copy()
            extended.update(
                completion.apply_atom(at) for at in trigger.rule.head.sorted_atoms()
            )
            if len(extended.terms()) > domain_budget:
                continue
            found = search(extended)
            if found is not None:
                return found
        return None

    model = search(kb.facts.copy())
    return ModelSearchResult(
        model=model,
        nodes_explored=nodes[0],
        exhausted=model is None and not budget_hit[0],
    )


def find_countermodel(
    kb: KnowledgeBase,
    query: ConjunctiveQuery,
    max_domain: int = 8,
    node_budget_per_size: int = 20_000,
) -> ModelSearchResult:
    """Iterative-deepening countermodel search: try growing domain
    budgets until a model of *kb* avoiding *query* is found.

    A found model soundly certifies ``K ⊭ Q``.  ``exhausted`` only means
    the bounded space held no countermodel — ``K ⊨ Q`` must be certified
    by the chase side of the Theorem-1 race instead.
    """
    total_nodes = 0
    for budget in range(1, max_domain + 1):
        result = find_finite_model(
            kb,
            domain_budget=budget,
            avoid=query,
            node_budget=node_budget_per_size,
        )
        total_nodes += result.nodes_explored
        if result.found:
            return ModelSearchResult(result.model, total_nodes, exhausted=False)
    return ModelSearchResult(None, total_nodes, exhausted=True)

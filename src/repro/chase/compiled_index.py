"""The compiled trigger index: semi-naive delta joins in int space.

:class:`CompiledTriggerIndex` is the compiled kernel's drop-in
replacement for :class:`~repro.chase.trigger_index.TriggerIndex`.  The
object index already maintains the live-trigger pool incrementally
(growth deltas + retraction transports — see its module docstring); what
it still pays per step is the *discovery join*: for every rule whose
body predicates meet the delta's, unify each body atom with each delta
atom at the object level, build a pinned :class:`Substitution`, and run
the homomorphism search from it.

This subclass compiles that join once per rule:

* at construction every rule body is compiled to a join plan over the
  interned relations (:func:`repro.logic.compiled.plans.source_plan` —
  shared with the homomorphism layer, so a body is encoded exactly once
  per process), reported as one ``compile`` event per rule;
* ``apply_delta`` encodes the delta atoms to int rows once, unifies
  body atoms against them in int space (no ``Substitution`` until a
  genuinely new trigger is found), seeds the compiled evaluator's
  :func:`~repro.logic.compiled.plans.run_plan` directly, and dedups
  homomorphisms on the raw int assignment — one ``join_plan`` event per
  absorbed delta summarises the round.

The discovery replays the object index's loops exactly — body atoms in
sorted order, delta atoms in arrival order, the evaluator's canonical
witness order — so the pool is populated in the **same order with the
same keys** as the object index would produce: the engine's fair
scheduler cannot tell the difference.  When the compiled layer is
scoped off mid-run (:func:`repro.logic.indexing.no_compiled`), every
maintenance call bails back to the inherited object path — same
answers, object speed.

Retractions need no compiled counterpart: the inherited
:meth:`~repro.chase.trigger_index.TriggerIndex.transport` carries
triggers through a simplification without any matching, and the
underlying :class:`~repro.logic.compiled.relations.CompiledView`
absorbs the corresponding tuple deletions through ``AtomSet.discard``
forwarding (plus delta invalidation of the cached per-plan pools).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..logic import indexing as _indexing
from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from ..logic.compiled import compiled_view, symbol_table
from ..logic.compiled.plans import run_plan, source_plan
from ..logic.rules import ExistentialRule
from ..logic.substitution import Substitution
from ..obs import observer as _observer_state
from .trigger import Trigger
from .trigger_index import TriggerIndex

__all__ = ["CompiledTriggerIndex"]


class CompiledTriggerIndex(TriggerIndex):
    """A :class:`TriggerIndex` whose delta re-matching runs as compiled
    join plans over the instance's interned relations."""

    __slots__ = ("_plans", "_plans_generation")

    def __init__(
        self,
        rules: Iterable[ExistentialRule],
        instance: AtomSet,
        track_satisfaction: bool = True,
    ):
        self._plans: dict = {}
        self._plans_generation: Optional[int] = None
        super().__init__(rules, instance, track_satisfaction=track_satisfaction)
        self._compile_plans()

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    def _compile_plans(self) -> None:
        """(Re)compile every rule body to a join plan, emitting one
        ``compile`` event per rule.  Recompilation only happens after
        the test-only symbol-table reset (generation mismatch)."""
        table = symbol_table()
        if self._plans_generation == table.generation:
            return
        observer = _observer_state.current
        self._plans = {}
        for rule in self.rules:
            encoded, var_codes = source_plan(rule.body, rule.body.sorted_atoms())
            self._plans[rule.name] = (encoded, var_codes)
            if observer is not None:
                observer.compile(
                    rule=rule.name or "",
                    body_atoms=len(encoded),
                    variables=len(var_codes),
                )
        self._plans_generation = table.generation

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        instance: AtomSet,
        delta: list[Atom],
        satisfied_hint: Optional[Trigger] = None,
    ) -> dict:
        """Absorb a growth step through the compiled join plans.

        Semantics (pool contents, key order, satisfaction marks) are
        identical to the inherited object version; only the discovery
        join runs in int space.  Bails to the object path when the
        compiled layer is scoped off.
        """
        if not (_indexing.compiled_enabled() and _indexing.atom_index_enabled()):
            return super().apply_delta(
                instance, delta, satisfied_hint=satisfied_hint
            )
        self._compile_plans()
        table = symbol_table()
        encode_atom = table.encode_atom
        view = compiled_view(instance)
        delta_rows = [encode_atom(at) for at in delta]
        delta_preds = {enc[1] for enc in delta_rows}

        before = len(self._live)
        new_keys: set = set()
        plan_runs = 0
        if delta_preds:
            for rule in self.rules:
                encoded, var_codes = self._plans[rule.name]
                if not any(entry[0] in delta_preds for entry in encoded):
                    continue
                plan_runs += 1
                for trigger in self._delta_triggers(
                    rule, encoded, var_codes, view, delta_rows
                ):
                    key = self.key(trigger)
                    if key not in self._live:
                        self._live[key] = trigger
                        new_keys.add(key)
        rechecks = 0
        if self.track_satisfaction:
            if satisfied_hint is not None:
                self._satisfied.add(self.key(satisfied_hint))
            delta_pred_objs = {at.predicate for at in delta}
            for key, trigger in self._live.items():
                if key in self._satisfied:
                    continue
                fresh = key in new_keys
                if not fresh and not (
                    self._head_preds[key[0]] & delta_pred_objs
                ):
                    continue
                rechecks += 1
                if trigger.is_satisfied_in(instance):
                    self._satisfied.add(key)

        observer = _observer_state.current
        if observer is not None:
            observer.join_plan(
                delta_atoms=len(delta),
                plans_run=plan_runs,
                triggers_new=len(new_keys),
                tuples=view.tuples,
            )
        return {
            "delta_atoms": len(delta),
            "triggers_new": len(new_keys),
            "triggers_reused": before,
            "satisfaction_rechecks": rechecks,
        }

    def _delta_triggers(
        self,
        rule: ExistentialRule,
        encoded: list[tuple],
        var_codes: frozenset,
        view,
        delta_rows: list[tuple],
    ) -> Iterator[Trigger]:
        """The compiled twin of
        :func:`repro.chase.trigger.triggers_from_delta`: pin each body
        atom onto each compatible delta row in turn, run the body plan
        from the pinned seed, dedup on the int assignment.  Loop order
        (sorted body atoms outer, delta arrival order inner) and the
        evaluator's witness order match the object code, so triggers
        are yielded in the identical sequence."""
        relations = view.relations
        for entry in encoded:
            rel = relations.get(entry[0])
            if rel is None or not rel.rows:
                return  # some body predicate has no rows: no triggers
        table = symbol_table()
        is_var = table.is_variable_code
        decode = table.decode_term
        seen: set = set()
        for pred_code, args, _var_positions, _const_positions in encoded:
            for enc in delta_rows:
                if enc[1] != pred_code:
                    continue
                row = enc[2]
                # Int unification of the body atom onto the delta row —
                # the compiled _unify_body_atom.
                pinned: Optional[dict] = {}
                for code, tgt in zip(args, row):
                    if is_var[code]:
                        bound = pinned.get(code)
                        if bound is None:
                            pinned[code] = tgt
                        elif bound != tgt:
                            pinned = None
                            break
                    elif code != tgt:
                        pinned = None
                        break
                if pinned is None:
                    continue
                for assignment in run_plan(encoded, view, pinned, frozenset()):
                    key = frozenset(assignment.items())
                    if key in seen:
                        continue
                    seen.add(key)
                    mapping = Substitution(
                        {decode(v): decode(t) for v, t in assignment.items()}
                    )
                    yield Trigger(rule, mapping)

"""Smoke tests keeping the example scripts runnable.

The two fast examples run end-to-end inside the test process; the
long-running walkthroughs are imported and their `main` checked for
existence only (they are exercised by the benchmark harness's shared
fixtures anyway).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


class TestFastExamples:
    def test_quickstart_runs(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "core chase" in out
        assert "True" in out and "False" in out

    def test_data_exchange_runs(self, capsys):
        _load("data_exchange").main()
        out = capsys.readouterr().out
        assert "weakly acyclic: True" in out
        assert "conflicting source fails the chase: True" in out


class TestSlowExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        ["staircase_walkthrough", "elevator_walkthrough", "decidability_demo", "ontology_qa"],
    )
    def test_module_has_main(self, name):
        module = _load(name)
        assert callable(module.main)


class TestOntologyKb:
    def test_guarded_and_diverging(self):
        from repro.analysis import certify_fes, is_guarded
        from repro.kbs.ontology import academia_kb

        kb = academia_kb()
        assert is_guarded(kb.rules)
        assert certify_fes(kb, max_steps=30) is None

    def test_restricted_chase_treewidth_1(self):
        from repro.analysis import TREEWIDTH, profile_chase
        from repro.chase.engine import ChaseVariant
        from repro.kbs.ontology import academia_kb

        profile = profile_chase(
            academia_kb(),
            variant=ChaseVariant.RESTRICTED,
            measure=TREEWIDTH,
            max_steps=15,
        )
        assert profile.uniform == 1

    def test_entailed_query(self):
        from repro.kbs.ontology import academia_kb
        from repro.query import boolean_cq, decide_entailment

        verdict = decide_entailment(
            academia_kb(),
            boolean_cq("supervises(X, kleene), memberOf(X, D)"),
            chase_budget=40,
        )
        assert verdict.entailed is True

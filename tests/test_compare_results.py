"""Tier-1 tests for the perf-regression gate script.

``benchmarks/compare_results.py`` is stdlib-only and not part of the
installed package, so it is loaded here by file path.  The cases pin the
three distinct gate verdicts: clean pass, timing regression, and —
added with the incremental core maintainer — *semantic drift*, where a
current row matches a baseline row on everything except the behaviour
counts (applications/retractions/atoms_out) and must fail with its own
error message rather than an opaque "row missing".
"""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "compare_results.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("compare_results", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _table(rows):
    return {
        "name": "perf_demo",
        "headers": ["workload", "steps", "applications", "retractions", "seconds"],
        "rows": rows,
        "schema": 1,
    }


ROW = {
    "workload": "elevator",
    "steps": 35,
    "applications": 35,
    "retractions": 0,
    "seconds": 4.0,
}


def _write_pair(tmp_path, baseline_rows, current_rows):
    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    baselines.mkdir()
    results.mkdir()
    (baselines / "perf_demo.json").write_text(json.dumps(_table(baseline_rows)))
    (results / "perf_demo.json").write_text(json.dumps(_table(current_rows)))
    return ["--baselines", str(baselines), "--results", str(results)]


def _run(gate, argv, capsys):
    code = gate.main(argv)
    captured = capsys.readouterr()
    return code, captured.out + captured.err


class TestGateVerdicts:
    def test_clean_pass(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 0.2}])
        code, output = _run(gate, argv, capsys)
        assert code == 0
        assert "perf gate clean" in output

    def test_slowdown_fails_with_ratio(self, gate, tmp_path, capsys):
        argv = _write_pair(tmp_path, [ROW], [{**ROW, "seconds": 9.0}])
        code, output = _run(gate, argv, capsys)
        assert code == 1
        assert "2.25x" in output
        assert "SEMANTIC DRIFT" not in output

    def test_count_drift_fails_with_distinct_message(self, gate, tmp_path, capsys):
        """Same workload, same timing, different application/retraction
        counts: the gate must call out behaviour change, not slowdown."""
        drifted = {**ROW, "applications": 36, "retractions": 1}
        argv = _write_pair(tmp_path, [ROW], [drifted])
        code, output = _run(gate, argv, capsys)
        assert code == 1
        assert "SEMANTIC DRIFT" in output
        assert "applications 35 -> 36" in output
        assert "retractions 0 -> 1" in output
        assert "row missing" not in output

    def test_genuinely_missing_row_is_not_drift(self, gate, tmp_path, capsys):
        other = {**ROW, "workload": "staircase"}
        argv = _write_pair(tmp_path, [ROW], [other])
        code, output = _run(gate, argv, capsys)
        assert code == 1
        assert "row missing from current results" in output
        assert "SEMANTIC DRIFT" not in output


class TestDriftDetector:
    def test_find_count_drift_reports_moved_fields(self, gate):
        base = (("workload", "elevator"), ("steps", 35), ("applications", 35))
        cur = (("workload", "elevator"), ("steps", 35), ("applications", 36))
        drift = gate.find_count_drift(base, [cur])
        assert drift == {"applications": (35, 36)}

    def test_find_count_drift_ignores_other_workloads(self, gate):
        base = (("workload", "elevator"), ("applications", 35))
        cur = (("workload", "staircase"), ("applications", 36))
        assert gate.find_count_drift(base, [cur]) is None

"""ASCII rendering of the coordinate-named paper structures.

Figure 2 (staircase) and Figures 3–4 (elevator) depict the structures on
a grid; :func:`render_coordinates` reproduces the layout in text, one
character cell per term, annotated with the unary predicates it carries:

* ``F`` — floor, ``C`` — ceiling, ``D`` — done;
* lowercase ``o`` — a term with none of the above;
* ``@`` — a term carrying both ``f`` and ``c`` (does not occur in the
  paper's structures; shown defensively).

Binary atoms are not drawn (the coordinate layout itself encodes h/v
adjacency); the experiment logs print them separately when needed.
"""

from __future__ import annotations

from typing import Mapping

from ..logic.atomset import AtomSet
from ..logic.terms import Term

__all__ = ["render_coordinates"]


def render_coordinates(
    atoms: AtomSet, coordinates: Mapping[Term, tuple[int, int]]
) -> str:
    """Render the coordinated terms of *atoms* as an ASCII grid (row 0 at
    the bottom, as in the paper's figures)."""
    placed = {t: c for t, c in coordinates.items() if t in atoms.terms()}
    if not placed:
        return "(no coordinated terms)"
    max_col = max(c for c, _ in placed.values())
    max_row = max(r for _, r in placed.values())
    grid = [[" " for _ in range(max_col + 1)] for _ in range(max_row + 1)]
    for term, (col, row) in placed.items():
        has_f = any(at.predicate.name == "f" for at in atoms.containing(term))
        has_c = any(at.predicate.name == "c" for at in atoms.containing(term))
        if has_f and has_c:
            mark = "@"
        elif has_f:
            mark = "F"
        elif has_c:
            mark = "C"
        elif any(at.predicate.name == "d" for at in atoms.containing(term)):
            mark = "D"
        else:
            mark = "o"
        grid[row][col] = mark
    lines = []
    for row in range(max_row, -1, -1):
        lines.append("".join(grid[row]).rstrip())
    return "\n".join(lines)

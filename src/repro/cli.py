"""Command-line interface: ``python -m repro <command> ...``.

Five subcommands cover the everyday workflows on serialized knowledge
bases (see :mod:`repro.logic.serialization` for the file format):

``chase``
    Run a chase variant with a step budget; print the final instance
    and a summary line.  ``--trace FILE`` records the run as JSONL
    telemetry (:mod:`repro.obs`), ``--metrics`` prints the metrics
    registry afterwards, ``--json`` emits a machine-readable summary.
``entail``
    Decide a Boolean CQ with the Theorem-1 race.
``analyze``
    The full analyzer: every syntactic criterion, the linear-fragment
    termination decision, the breadth-level k-boundedness probe, the
    budgeted fes certificate, and the execution strategy the planner
    derives from the verdict (``--json`` for the machine shape).
``classify``
    Deprecated alias kept for scripts: the syntactic analysis (weak
    acyclicity, guardedness, rule acyclicity) and the budgeted fes
    certificate.  Prints a pointer to ``analyze`` on stderr.
``treewidth``
    Treewidth of an instance file (exact, with bounds fallback).
``stats``
    Replay a ``--trace`` JSONL file into summary tables (per-step
    retraction series, search effort, service latencies, totals).
    Degrades gracefully: empty or truncated files get a clear message
    and a zero exit, and a whole-file metrics snapshot (as written by
    ``serve --metrics-file``) renders as a metrics table.
``serve``
    Run the long-lived query service (:mod:`repro.service`): JSONL
    requests over TCP, a process-pool of chase workers, and a
    chase-snapshot store for warm starts.  ``--trace-dir DIR`` turns on
    request tracing: the server writes ``DIR/server.jsonl``, each pool
    worker ``DIR/worker-<pid>.jsonl``.
``trace``
    Merge a ``--trace-dir`` run and reconstruct one request's causal
    timeline (``repro trace <trace_id> --dir DIR``), list the traces in
    a run, or dump every reconstructed trace (``--all --format=json``).
``top``
    Poll a running server's ``stats`` op and render a refreshing
    dashboard: request/job counters, supervision counters, and rolling
    p50/p95/p99 latency per op, split warm/cold/failed.

``chase`` and ``entail`` accept ``--timeout SECONDS``: a cooperative
deadline (the same machinery the service applies per job) that stops
the run between rule applications and reports the partial outcome.

Examples::

    python -m repro chase kb.repro --variant core --steps 50
    python -m repro chase kb.repro --variant core --trace run.jsonl
    python -m repro stats run.jsonl
    python -m repro entail kb.repro "mgr(ann, X)" --json
    python -m repro entail kb.repro "e(X, X)" --timeout 2.5
    python -m repro analyze kb.repro --json
    python -m repro treewidth instance.atoms
    python -m repro serve --port 7430 --workers 4 --snapshot-dir snaps/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import nullcontext
from typing import Optional, Sequence

from .analysis import analyze_ruleset
from .chase.engine import ChaseVariant, run_chase
from .logic import indexing
from .logic.homcache import get_cache
from .logic.serialization import load_instance, load_kb_file
from .obs import (
    JsonlTracer,
    MetricsObserver,
    MetricsRegistry,
    TracingObserver,
    observing,
    read_trace_lenient,
)
from .obs.stats import render_summary, summarize_trace
from .query import boolean_cq, decide_entailment
from .service.deadline import Deadline
from .treewidth import SearchBudgetExceeded, treewidth, treewidth_bounds
from .util.reporting import Table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Existential rules, chase variants, and treewidth "
        "(PODS 2023 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    chase = commands.add_parser("chase", help="run a chase on a KB file")
    chase.add_argument("kb", help="knowledge base file (sectioned format)")
    chase.add_argument(
        "--variant",
        choices=ChaseVariant.ALL,
        default=ChaseVariant.RESTRICTED,
    )
    chase.add_argument("--steps", type=int, default=100)
    chase.add_argument(
        "--quiet", action="store_true", help="summary only, no instance dump"
    )
    chase.add_argument(
        "--trace",
        metavar="FILE",
        help="write JSONL telemetry of the run to FILE (replay with "
        "'repro stats FILE')",
    )
    chase.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry after the run",
    )
    chase.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON summary instead of text",
    )
    chase.add_argument(
        "--no-index",
        action="store_true",
        help="run the naive engine: no incremental trigger index, no "
        "positional atom index, no homomorphism memo, no incremental "
        "core maintenance (the reference path differential tests "
        "compare against)",
    )
    chase.add_argument(
        "--no-compiled",
        action="store_true",
        help="disable the compiled chase kernel: homomorphism searches "
        "and trigger maintenance run on the object-level indexed "
        "engine (the kernel's differential oracle) instead of the "
        "interned join plans (implied by --no-index)",
    )
    chase.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="cooperative deadline: stop between rule applications once "
        "SECONDS have elapsed and report the partial run",
    )
    chase.add_argument(
        "--no-core-maint",
        action="store_true",
        help="disable only the incremental core maintainer: per-step "
        "cores are recomputed from scratch while the other indexes "
        "stay on (implied by --no-index)",
    )

    entail = commands.add_parser("entail", help="decide a Boolean CQ")
    entail.add_argument("kb", help="knowledge base file")
    entail.add_argument("query", help='query text, e.g. "e(X, Y), e(Y, X)"')
    entail.add_argument("--chase-budget", type=int, default=100)
    entail.add_argument("--model-budget", type=int, default=6)
    entail.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="cooperative deadline on the race; an expiry reports "
        "UNDECIDED with the incomplete flag set",
    )
    entail.add_argument(
        "--rewrite",
        dest="rewrite",
        action="store_true",
        default=None,
        help="attempt the backward UCQ-rewriting fast path before the "
        "chase race (the default for linear/guarded rulesets; the race "
        "remains the sound fallback when rewriting is inconclusive)",
    )
    entail.add_argument(
        "--no-rewrite",
        dest="rewrite",
        action="store_false",
        help="skip the rewriting fast path and run the pure Theorem-1 race",
    )
    entail.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON verdict instead of text",
    )

    analyze = commands.add_parser(
        "analyze",
        help="full ruleset analysis: classes, termination/boundedness "
        "probes, and the planner's strategy",
    )
    analyze.add_argument("kb", help="knowledge base file")
    analyze.add_argument(
        "--steps",
        type=int,
        default=200,
        help="core-chase budget for the fes certificate (default 200)",
    )
    analyze.add_argument(
        "--k-max",
        type=int,
        default=6,
        help="breadth levels the k-boundedness probe explores (default 6)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the verdict and strategy as JSON instead of text",
    )

    classify = commands.add_parser(
        "classify",
        help="(deprecated: use 'analyze') syntactic analysis + fes "
        "certificate",
    )
    classify.add_argument("kb", help="knowledge base file")
    classify.add_argument("--steps", type=int, default=200)
    classify.add_argument(
        "--json",
        action="store_true",
        help="emit the analysis report as JSON instead of text",
    )

    width = commands.add_parser("treewidth", help="treewidth of an instance")
    width.add_argument("instance", help="instance file (one atom per line)")

    stats = commands.add_parser(
        "stats", help="summarize a JSONL trace written by 'chase --trace'"
    )
    stats.add_argument("trace", help="JSONL trace file")
    stats.add_argument(
        "--stride",
        type=int,
        default=5,
        help="report every N-th chase step in the series table (default 5)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the full summary (including the per-step series) as JSON",
    )

    serve = commands.add_parser(
        "serve", help="run the JSONL-over-TCP query service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port; 0 (default) picks an ephemeral port, printed on "
        "the 'listening on' line",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="chase worker processes; 0 runs jobs in-process (default 2)",
    )
    serve.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        help="chase-snapshot store root for warm starts (default: a "
        "temporary directory discarded on exit)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="default per-job deadline for requests without their own",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget per job for transient executor failures "
        "(broken pool / dead worker; default 2)",
    )
    serve.add_argument(
        "--max-snapshots",
        type=int,
        metavar="N",
        help="bound the snapshot store to N entries (access-counter "
        "LRU eviction; default unbounded)",
    )
    serve.add_argument(
        "--max-snapshot-mb",
        type=float,
        metavar="MB",
        help="bound the snapshot store to MB megabytes (access-counter "
        "LRU eviction; default unbounded)",
    )
    serve.add_argument(
        "--max-chain-depth",
        type=int,
        metavar="N",
        help="delta records allowed per snapshot chain before the "
        "store re-checkpoints a full base (default 8)",
    )
    serve.add_argument(
        "--no-ancestor-resume",
        action="store_true",
        help="disable nearest-ancestor snapshot resolution on exact "
        "snapshot misses (jobs chase cold instead)",
    )
    serve.add_argument(
        "--no-planner",
        action="store_true",
        help="disable planner routing: jobs run under their requests' "
        "own chase configuration instead of the analyzer-derived "
        "strategy (routing is on by default; per-request 'planner' / "
        "'strategy' fields still override either way)",
    )
    serve.add_argument(
        "--fault-dir",
        metavar="DIR",
        help="arm fault injection from the fuse files in DIR "
        "(chaos testing; see repro.service.faults)",
    )
    serve.add_argument(
        "--trace",
        metavar="FILE",
        help="write JSONL service telemetry to FILE (replay with "
        "'repro stats FILE')",
    )
    serve.add_argument(
        "--metrics-file",
        metavar="FILE",
        help="write the final metrics snapshot to FILE as JSON on exit "
        "('repro stats FILE' renders it)",
    )
    serve.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="request-tracing run directory: the server traces into "
        "DIR/server.jsonl and each pool worker into "
        "DIR/worker-<pid>.jsonl (reconstruct with 'repro trace --dir "
        "DIR'); takes precedence over --trace",
    )

    trace = commands.add_parser(
        "trace",
        help="reconstruct request timelines from a serve --trace-dir run",
    )
    trace.add_argument(
        "trace_id",
        nargs="?",
        help="the trace to reconstruct; omit to list the traces in the "
        "run (or use --all)",
    )
    trace.add_argument(
        "--dir",
        default=".",
        metavar="DIR",
        help="the run directory (every *.jsonl inside is merged on "
        "wall-clock order) or a single trace file (default: .)",
    )
    trace.add_argument(
        "--all",
        action="store_true",
        help="reconstruct every trace in the run",
    )
    trace.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text renders indented span trees; json dumps the "
        "reconstructed trees as JSON (default text)",
    )

    top = commands.add_parser(
        "top", help="live dashboard over a running server's stats op"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--port",
        type=int,
        required=True,
        help="the server's TCP port (printed on its 'listening on' line)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default 2.0)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes; 0 (default) runs until Ctrl-C",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single snapshot without clearing the screen",
    )

    return parser


def _cmd_chase(args: argparse.Namespace) -> int:
    kb = load_kb_file(args.kb)
    registry = MetricsRegistry() if args.metrics else None
    sink = open(args.trace, "w") if args.trace else None
    if sink is not None:
        observer = TracingObserver(JsonlTracer(sink), registry=registry)
    elif registry is not None:
        observer = MetricsObserver(registry)
    else:
        observer = None
    maint_scope = (
        indexing.configured(core_maint=False)
        if args.no_core_maint
        else nullcontext()
    )
    deadline = Deadline(args.timeout) if args.timeout is not None else None
    try:
        with maint_scope, observing(observer):
            result = run_chase(
                kb,
                variant=args.variant,
                max_steps=args.steps,
                use_index=not args.no_index,
                use_compiled=not args.no_compiled,
                should_stop=deadline,
            )
    finally:
        if sink is not None:
            sink.close()

    summary = {
        "variant": args.variant,
        "terminated": result.terminated,
        "stopped": result.stopped,
        "applications": result.applications,
        "atoms": len(result.final_instance),
        "nulls": len(result.final_instance.variables()),
        "retractions": result.retractions,
        "atoms_retracted": result.atoms_retracted,
    }
    if args.json:
        if not args.quiet:
            summary["instance"] = [
                str(at) for at in result.final_instance.sorted_atoms()
            ]
        if registry is not None:
            summary["metrics"] = registry.snapshot()
        print(json.dumps(summary, indent=2))
        return 0

    if not args.quiet:
        for at in result.final_instance.sorted_atoms():
            print(at)
    if result.terminated:
        status = "terminated"
    elif result.stopped:
        status = "stopped (deadline)"
    else:
        status = "budget-exhausted"
    print(
        f"# {args.variant} chase {status}: {result.applications} applications, "
        f"{summary['atoms']} atoms, {summary['nulls']} nulls, "
        f"{result.retractions} retractions, "
        f"{result.atoms_retracted} atoms retracted"
    )
    if registry is not None:
        print(_metrics_table(registry).render(), end="")
    return 0


def _metrics_table(registry: MetricsRegistry) -> Table:
    return _metrics_snapshot_table(registry.snapshot())


def _metrics_snapshot_table(snapshot: dict) -> Table:
    table = Table(["metric", "kind", "value"], title="# metrics")
    for name in sorted(snapshot):
        snap = snapshot[name]
        if snap["kind"] in ("counter", "gauge"):
            value = snap["value"]
        else:  # timer / histogram
            value = f"n={snap['count']} mean={snap['mean']:.6g}"
        table.add_row(name, snap["kind"], value)
    return table


def _cmd_entail(args: argparse.Namespace) -> int:
    from .query.rewriting import decide_by_rewriting

    kb = load_kb_file(args.kb)
    deadline = Deadline(args.timeout) if args.timeout is not None else None
    verdict = None
    if args.rewrite is not False:
        # Auto-attempts on rewritable rulesets; returns None (and the
        # race below answers) when the fragment check fails or the
        # budgeted saturation is inconclusive.
        verdict = decide_by_rewriting(kb, boolean_cq(args.query))
    if verdict is None:
        verdict = decide_entailment(
            kb,
            boolean_cq(args.query),
            chase_budget=args.chase_budget,
            model_domain_budget=args.model_budget,
            should_stop=deadline,
        )
    if args.json:
        print(
            json.dumps(
                {
                    "query": args.query,
                    "entailed": verdict.entailed,
                    "method": verdict.method,
                    "incomplete": verdict.incomplete,
                },
                indent=2,
            )
        )
        return 2 if verdict.entailed is None else (0 if verdict.entailed else 1)
    if verdict.entailed is None:
        if verdict.incomplete:
            print(f"UNDECIDED, deadline expired ({verdict.method})")
        else:
            print(f"UNDECIDED within budgets ({verdict.method})")
        return 2
    print(f"{'ENTAILED' if verdict.entailed else 'NOT ENTAILED'} ({verdict.method})")
    return 0 if verdict.entailed else 1


def _classify_report(args: argparse.Namespace) -> int:
    """The classify report body, shared by ``classify`` (deprecated)
    and kept byte-stable on stdout for scripts that parse it."""
    kb = load_kb_file(args.kb)
    report = analyze_ruleset(kb.rules, kb=kb, fes_budget=args.steps)
    if args.json:
        print(
            json.dumps(
                {
                    "rules": len(kb.rules),
                    "facts": len(kb.facts),
                    "weakly_acyclic": report.weakly_acyclic,
                    "guarded": report.guarded,
                    "frontier_guarded": report.frontier_guarded,
                    "sticky": report.sticky,
                    "rule_acyclic": report.rule_acyclic,
                    "fes_applications": report.fes_applications,
                    "fes_budget": args.steps,
                    "fes_budget_consumed": report.fes_budget_consumed,
                    "decidable_cq_entailment": report.decidable_cq_entailment,
                },
                indent=2,
            )
        )
        return 0
    print(f"rules: {len(kb.rules)}, facts: {len(kb.facts)}")
    print(f"weakly acyclic:    {report.weakly_acyclic}")
    print(f"guarded:           {report.guarded}")
    print(f"frontier-guarded:  {report.frontier_guarded}")
    print(f"sticky:            {report.sticky}")
    print(f"rule-acyclic:      {report.rule_acyclic}")
    if report.fes_applications is None:
        print(f"fes (this instance): unknown within {args.steps} steps")
    else:
        print(
            "fes (this instance): yes, core chase terminated in "
            f"{report.fes_applications}"
        )
    print(f"decidable CQ entailment certified: {report.decidable_cq_entailment}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    print(
        "repro classify is deprecated; use 'repro analyze' "
        "(same classes, plus termination probes and the planner verdict)",
        file=sys.stderr,
    )
    return _classify_report(args)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.planner import Planner, plan

    kb = load_kb_file(args.kb)
    planner = Planner(fes_budget=args.steps, k_max=args.k_max)
    verdict = planner.compute(kb)
    strategy = plan(verdict)
    if args.json:
        print(
            json.dumps(
                {
                    "rules": len(kb.rules),
                    "facts": len(kb.facts),
                    "verdict": verdict.to_obj(),
                    "terminating": verdict.terminating,
                    "bts_class": verdict.bts_class,
                    "decidable": verdict.decidable,
                    "rewritable": verdict.rewritable,
                    "strategy": strategy.to_obj(),
                },
                indent=2,
            )
        )
        return 0
    print(f"rules: {len(kb.rules)}, facts: {len(kb.facts)}")
    print(f"weakly acyclic:    {verdict.weakly_acyclic}")
    print(f"guarded:           {verdict.guarded}")
    print(f"frontier-guarded:  {verdict.frontier_guarded}")
    print(f"sticky:            {verdict.sticky}")
    print(f"rule-acyclic:      {verdict.rule_acyclic}")
    print(f"linear:            {verdict.linear}")
    if verdict.linear_terminating is None:
        linear_line = "undecided (not linear, or shape budget exhausted)"
    elif verdict.linear_terminating:
        linear_line = "terminates (all variants, all instances)"
    else:
        linear_line = "diverges (oblivious chase, critical instance)"
    print(f"linear termination: {linear_line}")
    if verdict.k_bound is not None:
        print(f"k-bounded (this instance): yes, breadth level {verdict.k_bound}")
    else:
        print("k-bounded (this instance): not within probe budget")
    if verdict.fes_applications is not None:
        print(
            "fes (this instance): yes, core chase terminated in "
            f"{verdict.fes_applications} "
            f"(consumed {verdict.fes_budget_consumed})"
        )
    else:
        print(
            f"fes (this instance): unknown within {args.steps} steps "
            f"(consumed {verdict.fes_budget_consumed})"
        )
    print(f"terminating (all variants): {verdict.terminating}")
    print(f"bts class: {verdict.bts_class}")
    print(f"decidable CQ entailment certified: {verdict.decidable}")
    if verdict.rewritable:
        fragment = "linear" if verdict.linear else "guarded"
        rewritable_line = f"yes ({fragment} fragment, UCQ rewriting applies)"
    else:
        rewritable_line = "no"
    print(f"rewritable: {rewritable_line}")
    print(
        f"strategy: {strategy.name} (variant={strategy.variant}, "
        f"core_every={strategy.core_every}, max_steps={strategy.max_steps}, "
        f"model_budget={strategy.model_budget}, "
        f"ancestor_resume={strategy.ancestor_resume})"
    )
    print(f"  reason: {strategy.reason}")
    return 0


def _cmd_treewidth(args: argparse.Namespace) -> int:
    with open(args.instance) as handle:
        atoms = load_instance(handle.read())
    try:
        print(f"treewidth: {treewidth(atoms)}")
    except SearchBudgetExceeded as exc:
        low, high = treewidth_bounds(atoms)
        if exc.lower is not None:
            low = max(low, exc.lower)
        print(f"treewidth: in [{low}, {high}] (exact search exceeded budget)")
    return 0


def _metrics_snapshot_payload(text: str) -> Optional[dict]:
    """Detect a whole-file metrics snapshot (``serve --metrics-file``
    output): a single JSON object mapping names to instrument dicts."""
    if not text.startswith("{"):
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict) or not payload:
        return None
    if all(
        isinstance(value, dict) and "kind" in value
        for value in payload.values()
    ):
        return payload
    return None


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        with open(args.trace) as handle:
            text = handle.read()
    except OSError as exc:
        print(
            f"stats: cannot read {args.trace}: {exc.strerror or exc}",
            file=sys.stderr,
        )
        return 2
    stripped = text.strip()
    if not stripped:
        print(f"stats: {args.trace} is empty - no events to summarize")
        return 0
    snapshot = _metrics_snapshot_payload(stripped)
    if snapshot is not None:
        if args.json:
            print(json.dumps(snapshot, indent=2))
        else:
            print(_metrics_snapshot_table(snapshot).render(), end="")
        return 0
    events, skipped = read_trace_lenient(stripped.splitlines())
    if skipped:
        print(
            f"# stats: skipped {skipped} malformed line(s) "
            "(truncated or torn trace)"
        )
    if not events:
        print(f"stats: no readable events in {args.trace}")
        return 0
    summary = summarize_trace(events)
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(render_summary(summary, step_stride=max(args.stride, 1)))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.spans import (
        build_trace,
        read_trace_dir,
        render_trace,
        trace_ids,
        trace_to_obj,
    )

    if not os.path.exists(args.dir):
        print(f"trace: cannot read {args.dir}: no such path", file=sys.stderr)
        return 2
    try:
        events, skipped = read_trace_dir(args.dir)
    except OSError as exc:
        print(
            f"trace: cannot read {args.dir}: {exc.strerror or exc}",
            file=sys.stderr,
        )
        return 2
    if skipped:
        print(
            f"# trace: skipped {skipped} malformed line(s) "
            "(truncated or torn trace)",
            file=sys.stderr,
        )
    ids = trace_ids(events)
    if not ids:
        print(f"trace: no trace events under {args.dir}")
        return 0
    if args.all:
        selected = list(ids)
    elif args.trace_id is None:
        table = Table(
            ["trace_id", "events"], title=f"# traces in {args.dir}"
        )
        for trace_id, count in ids.items():
            table.add_row(trace_id, count)
        print(table.render(), end="")
        return 0
    elif args.trace_id in ids:
        selected = [args.trace_id]
    else:
        print(f"trace: unknown trace id {args.trace_id!r}", file=sys.stderr)
        print(
            "available: " + " ".join(ids),
            file=sys.stderr,
        )
        return 2
    trees = [build_trace(events, trace_id) for trace_id in selected]
    if args.format == "json":
        payload = [trace_to_obj(tree) for tree in trees]
        print(json.dumps(payload[0] if not args.all else payload, indent=2))
        return 0
    for index, tree in enumerate(trees):
        if index:
            print()
        print(render_trace(tree))
    return 0


def _poll_stats(host: str, port: int, timeout: float = 10.0) -> dict:
    """One ``stats`` request over a fresh connection (the server speaks
    newline-delimited JSON, so a single line each way suffices)."""
    import socket

    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(b'{"op": "stats"}\n')
        with conn.makefile("r", encoding="utf-8") as reader:
            line = reader.readline()
    if not line:
        raise ValueError("server closed the connection without a reply")
    payload = json.loads(line)
    if not isinstance(payload, dict) or not payload.get("ok"):
        raise ValueError(f"bad stats reply: {line.strip()[:200]}")
    return payload


#: Counters the top dashboard surfaces, in display order.
_TOP_COUNTERS = (
    "requests",
    "coalesced",
    "jobs",
    "warm_hits",
    "errors",
    "retries",
    "pool_rebuilds",
    "snapshots_evicted",
    "pending",
    "inflight",
)


def _render_top(stats: dict) -> str:
    """The dashboard body for one stats payload (shared by --once and
    the refreshing loop, and unit-testable without a socket)."""
    counters = Table(["counter", "value"], title="# service")
    for key in _TOP_COUNTERS:
        if key in stats:
            counters.add_row(key, stats[key])
    ratio = stats.get("warm_hit_ratio")
    counters.add_row(
        "warm_hit_ratio",
        f"{ratio:.3f}" if isinstance(ratio, (int, float)) else "-",
    )
    window = stats.get("latency_window") or {}
    latency = stats.get("latency") or {}
    title = (
        f"# latency (last {window.get('samples', 0)}"
        f"/{window.get('capacity', '?')} jobs, seconds)"
    )
    table = Table(
        ["op", "class", "count", "mean", "p50", "p95", "p99"], title=title
    )
    for op in sorted(latency):
        for klass in ("ok", "warm", "cold", "failed"):
            block = latency[op].get(klass)
            if not block:
                continue
            table.add_row(
                op,
                klass,
                block["count"],
                f"{block['mean']:.6g}",
                f"{block['p50']:.6g}",
                f"{block['p95']:.6g}",
                f"{block['p99']:.6g}",
            )
    parts = [counters.render().rstrip("\n")]
    if latency:
        parts.append(table.render().rstrip("\n"))
    return "\n".join(parts)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    iteration = 0
    try:
        while True:
            iteration += 1
            try:
                stats = _poll_stats(args.host, args.port)
            except (OSError, ValueError) as exc:
                print(
                    f"top: cannot poll {args.host}:{args.port}: {exc}",
                    file=sys.stderr,
                )
                return 1
            body = _render_top(stats)
            if args.once:
                print(body)
                return 0
            # Clear + home, then redraw: a dependency-free refresh.
            sys.stdout.write("\x1b[2J\x1b[H" + body + "\n")
            sys.stdout.flush()
            if args.iterations and iteration >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile

    from .service.executor import JobExecutor, RetryPolicy
    from .service.faults import FaultPlan
    from .service.server import serve as _serve

    registry = MetricsRegistry()
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        sink = open(os.path.join(args.trace_dir, "server.jsonl"), "w")
    elif args.trace:
        sink = open(args.trace, "w")
    else:
        sink = None
    if sink is not None:
        observer = TracingObserver(JsonlTracer(sink), registry=registry)
    else:
        observer = MetricsObserver(registry)
    scratch = None
    snapshot_dir = args.snapshot_dir
    if snapshot_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-snapshots-")
        snapshot_dir = scratch.name
    fault_plan = FaultPlan(args.fault_dir) if args.fault_dir else None
    max_snapshot_bytes = (
        int(args.max_snapshot_mb * 1024 * 1024)
        if args.max_snapshot_mb is not None
        else None
    )
    executor = JobExecutor(
        workers=args.workers,
        snapshot_dir=snapshot_dir,
        registry=registry,
        retry_policy=RetryPolicy(max_retries=args.max_retries),
        fault_dir=args.fault_dir,
        max_snapshot_entries=args.max_snapshots,
        max_snapshot_bytes=max_snapshot_bytes,
        max_chain_depth=args.max_chain_depth,
        ancestor_resume=not args.no_ancestor_resume,
        trace_dir=args.trace_dir,
    )
    try:
        with observing(observer):
            try:
                asyncio.run(
                    _serve(
                        host=args.host,
                        port=args.port,
                        default_timeout=args.timeout,
                        executor=executor,
                        fault_plan=fault_plan,
                        planner=not args.no_planner,
                    )
                )
            except KeyboardInterrupt:
                pass
    finally:
        executor.shutdown()
        if sink is not None:
            sink.close()
        if args.metrics_file:
            with open(args.metrics_file, "w") as handle:
                json.dump(registry.snapshot(), handle, indent=2)
        if scratch is not None:
            scratch.cleanup()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # Each invocation starts with a cold homomorphism memo, so CLI runs
    # report the same telemetry whether main() is called from a fresh
    # process or repeatedly in one (as the test-suite does).
    get_cache().clear()
    handlers = {
        "chase": _cmd_chase,
        "entail": _cmd_entail,
        "analyze": _cmd_analyze,
        "classify": _cmd_classify,
        "treewidth": _cmd_treewidth,
        "stats": _cmd_stats,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "top": _cmd_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

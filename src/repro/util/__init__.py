"""Utilities: variable orders for the robust renaming, experiment
tables, and ASCII structure rendering."""

from .dot import decomposition_to_dot, derivation_to_dot, instance_to_dot
from .orders import coordinate_row_major_order, creation_rank_order, name_order
from .render import render_coordinates
from .reporting import Table, banner

__all__ = [
    "Table",
    "decomposition_to_dot",
    "derivation_to_dot",
    "instance_to_dot",
    "banner",
    "coordinate_row_major_order",
    "creation_rank_order",
    "name_order",
    "render_coordinates",
]

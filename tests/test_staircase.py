"""Paper claims about the steepening staircase K_h (Section 6 + the
Section 8 walkthrough): Propositions 3, 4, 5 and the robust-aggregation
behaviour."""

import pytest

from repro.chase import RobustSequence
from repro.kbs import staircase as sc
from repro.logic import is_core, isomorphic, maps_into
from repro.logic.cores import retracts_to
from repro.treewidth import (
    grid_from_coordinates,
    grid_lower_bound,
    treewidth,
    treewidth_bounds,
)


class TestGenerators:
    def test_facts_match_definition_7(self):
        kb = sc.staircase_kb()
        assert kb.facts == sc.universal_model_window(0).induced([sc.term_at(0, 0)])

    def test_rule_names(self):
        assert sc.staircase_kb().rules.names() == ["Rh1", "Rh2", "Rh3", "Rh4"]

    def test_term_bounds_enforced(self):
        with pytest.raises(ValueError):
            sc.term_at(1, 3)  # j > i + 1
        with pytest.raises(ValueError):
            sc.term_at(-1, 0)

    def test_window_growth(self):
        sizes = [len(sc.universal_model_window(k)) for k in range(4)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_windows_nested(self):
        assert sc.universal_model_window(2).issubset(sc.universal_model_window(3))

    def test_column_is_within_window(self):
        assert sc.column(3).issubset(sc.universal_model_window(3))

    def test_step_contains_both_columns(self):
        step = sc.step(2)
        assert sc.column(2).issubset(step)
        assert sc.column(3).issubset(step)

    def test_coordinates_roundtrip(self):
        window = sc.universal_model_window(2)
        coords = sc.coordinates(window)
        assert coords[sc.term_at(1, 2)] == (1, 2)
        assert len(coords) == len(window.terms())


class TestModelhood:
    def test_capped_window_is_finite_model(self):
        kb = sc.staircase_kb()
        for k in (1, 2, 3):
            assert kb.is_model(sc.capped_model(k)), k

    def test_plain_window_is_not_a_model(self):
        # boundary triggers are unsatisfied without the cap
        kb = sc.staircase_kb()
        assert not kb.is_model(sc.universal_model_window(2))

    def test_infinite_column_prefix_maps_into_capped_model(self):
        # Ĩ^h is a model of K_h; its prefixes map into every model's cap
        assert maps_into(sc.infinite_column_model(4), sc.capped_model(2))

    def test_column_model_interior_satisfies_rules(self):
        """All triggers of Ĩ^h whose satisfaction stays below the top row
        are satisfied — the full infinite column is a model."""
        kb = sc.staircase_kb()
        tall = sc.infinite_column_model(8)
        short_terms = {t for t in tall.terms() if int(t.name.split("_")[1]) <= 5}
        from repro.chase.trigger import triggers

        for rule in kb.rules:
            for trigger in triggers(rule, tall):
                image_terms = set(trigger.mapping.image())
                if image_terms <= short_terms:
                    assert trigger.is_satisfied_in(tall), (rule.name, trigger)


class TestProposition3:
    """I^h is a result of the restricted chase on K_h."""

    def test_restricted_prefix_embeds_into_capped_window(
        self, staircase_restricted_run
    ):
        final = staircase_restricted_run.final_instance
        assert maps_into(final, sc.capped_model(6))

    def test_restricted_run_is_monotonic(self, staircase_restricted_run):
        assert staircase_restricted_run.derivation.is_monotonic()

    def test_restricted_run_validates(self, staircase_restricted_run):
        staircase_restricted_run.derivation.validate()

    def test_restricted_chase_does_not_terminate(self, staircase_restricted_run):
        assert not staircase_restricted_run.terminated

    def test_window_maps_into_restricted_aggregation_eventually(
        self, staircase_restricted_run
    ):
        """The chase is fair, so early windows of I^h appear (up to
        homomorphism) in the aggregation."""
        aggregation = staircase_restricted_run.derivation.natural_aggregation()
        assert maps_into(sc.universal_model_window(1), aggregation)


class TestProposition4:
    """The core chase of K_h is uniformly treewidth-bounded by 2."""

    def test_every_step_has_treewidth_at_most_2(self, staircase_core_run):
        for step in staircase_core_run.derivation:
            assert treewidth(step.instance) <= 2, step.index

    def test_core_run_does_not_terminate(self, staircase_core_run):
        assert not staircase_core_run.terminated

    def test_core_run_validates(self, staircase_core_run):
        staircase_core_run.derivation.validate()

    def test_steps_stay_small(self, staircase_core_run):
        """The core chase keeps instances within step-sized bounds while
        the restricted chase grows without folding."""
        core_sizes = [len(s.instance) for s in staircase_core_run.derivation]
        assert max(core_sizes) <= len(sc.step(10))

    def test_paper_retraction_claim(self):
        """Section 6: C^h_{k+1} is a retract of S^h_k that is a core."""
        for k in (0, 1, 2, 3):
            retraction = retracts_to(sc.step(k), sc.column(k + 1))
            assert retraction is not None, k
            assert is_core(sc.column(k + 1)), k

    def test_steps_have_treewidth_2(self):
        for k in (1, 2, 3):
            assert treewidth(sc.step(k)) == 2, k


class TestProposition5:
    """No universal model of K_h has finite treewidth: I^h contains
    arbitrarily large grids, and any universal model is homomorphically
    equivalent to I^h."""

    def test_windows_contain_growing_grids(self):
        window = sc.universal_model_window(6)
        coords = sc.coordinates(window)
        # the n×n block anchored at column n+1, rows 0..n-1 (from the
        # appendix proof: T_{n×n} = {X^i_j | n+1 ≤ i ≤ 2n, 0 ≤ j ≤ n-1})
        for n in (2, 3):
            assert grid_from_coordinates(
                window, coords, n, origin=(n + 1, 0)
            ), n

    def test_generic_grid_search_agrees(self):
        assert grid_lower_bound(sc.universal_model_window(4), max_n=3) == 3

    def test_window_treewidth_grows(self):
        """Grid-based lower bounds (Fact 2) grow with the window — the
        MMD/degeneracy bound saturates at 2 on grids, so the paper's own
        grid technique is the one that witnesses the growth."""
        window = sc.universal_model_window(6)
        coords = sc.coordinates(window)
        witnessed = [
            n
            for n in (2, 3)
            if grid_from_coordinates(window, coords, n, origin=(n + 1, 0))
        ]
        assert witnessed == [2, 3]
        assert treewidth_bounds(window)[1] >= 3

    def test_column_model_is_not_universal(self):
        """Ĩ^h does not map into I^h windows once its v-path is longer
        than any finite v-path of the window (v-paths of I^h have length
        ≤ column height)."""
        tall_column = sc.infinite_column_model(6)
        window = sc.universal_model_window(3)
        assert not maps_into(tall_column, window)


class TestSection8Walkthrough:
    """The robust aggregation of the staircase core chase materializes
    the infinite column Ĩ^h (finitely universal, treewidth 1)."""

    @pytest.fixture(scope="class")
    def robust(self, staircase_core_run):
        return RobustSequence(staircase_core_run.derivation)

    def test_stable_part_is_column_prefix(self, robust):
        stable = robust.stable_part(patience=len(robust) // 2)
        matches = [
            h
            for h in range(1, 8)
            if isomorphic(stable, sc.infinite_column_model(h))
        ]
        assert len(matches) == 1

    def test_stable_part_has_treewidth_at_most_1(self, robust):
        stable = robust.stable_part(patience=len(robust) // 2)
        assert treewidth(stable) <= 1

    def test_aggregate_treewidth_bounded_by_2(self, robust):
        """Proposition 12(2): the robust aggregation inherits the bound 2
        (the prefix reading: G_S ≅ F_S has tw ≤ 2)."""
        assert treewidth(robust.aggregate()) <= 2

    def test_natural_aggregation_grows_beyond_robust(self, staircase_core_run):
        """The contrast of Section 9: D* regrows structure the core chase
        pruned, D⊛ does not."""
        natural = staircase_core_run.derivation.natural_aggregation()
        robust = RobustSequence(staircase_core_run.derivation).aggregate()
        assert len(natural) > len(robust)

    def test_stable_part_universal_for_prefix(self, robust, staircase_kb_fixture):
        """Finite universality in action: the stable part maps into the
        capped finite models of K_h."""
        stable = robust.stable_part(patience=len(robust) // 2)
        assert maps_into(stable, sc.capped_model(2))

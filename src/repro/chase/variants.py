"""Named entry points for the four chase variants.

Thin wrappers around :class:`repro.chase.engine.ChaseEngine`; kept
separate so call sites read like the paper ("run the core chase on
``K_h`` for 200 steps").
"""

from __future__ import annotations

from typing import Callable, Optional

from ..logic.kb import KnowledgeBase
from .derivation import DerivationStep
from .engine import ChaseEngine, ChaseResult, ChaseVariant

__all__ = [
    "frugal_chase",
    "oblivious_chase",
    "semi_oblivious_chase",
    "restricted_chase",
    "core_chase",
]

StepHook = Optional[Callable[[DerivationStep], None]]


def oblivious_chase(
    kb: KnowledgeBase, max_steps: int = 1000, on_step: StepHook = None
) -> ChaseResult:
    """The oblivious chase: apply every trigger once, never check for
    redundancy.  The most lavish baseline of the introduction."""
    return ChaseEngine(kb, variant=ChaseVariant.OBLIVIOUS).run(
        max_steps=max_steps, on_step=on_step
    )


def semi_oblivious_chase(
    kb: KnowledgeBase, max_steps: int = 1000, on_step: StepHook = None
) -> ChaseResult:
    """The semi-oblivious (skolem) chase: apply at most one trigger per
    rule and frontier image."""
    return ChaseEngine(kb, variant=ChaseVariant.SEMI_OBLIVIOUS).run(
        max_steps=max_steps, on_step=on_step
    )


def restricted_chase(
    kb: KnowledgeBase, max_steps: int = 1000, on_step: StepHook = None
) -> ChaseResult:
    """The restricted (standard) chase: apply only unsatisfied triggers;
    all simplifications are the identity, so the derivation is monotonic
    (Section 3)."""
    return ChaseEngine(kb, variant=ChaseVariant.RESTRICTED).run(
        max_steps=max_steps, on_step=on_step
    )


def frugal_chase(
    kb: KnowledgeBase, max_steps: int = 1000, on_step: StepHook = None
) -> ChaseResult:
    """The frugal chase [15]: apply only unsatisfied triggers and fold
    away redundant *freshly created* nulls after each application —
    strictly between the restricted and core chases in redundancy
    removal, and (unlike the core chase) monotonic."""
    return ChaseEngine(kb, variant=ChaseVariant.FRUGAL).run(
        max_steps=max_steps, on_step=on_step
    )


def core_chase(
    kb: KnowledgeBase,
    max_steps: int = 1000,
    core_every: int = 1,
    on_step: StepHook = None,
) -> ChaseResult:
    """The core chase: apply only unsatisfied triggers and retract to a
    core every ``core_every`` applications (Section 3).  Terminates iff
    the KB has a finite universal model, which is then the final
    instance."""
    return ChaseEngine(kb, variant=ChaseVariant.CORE, core_every=core_every).run(
        max_steps=max_steps, on_step=on_step
    )

"""Plain-text experiment tables.

The benchmark harness prints, for every reproduced figure/proposition,
the series the paper reports.  :class:`Table` renders aligned monospace
tables (plus CSV and machine-readable JSON records for post-processing)
without pulling in any dependency.
"""

from __future__ import annotations

import io
from typing import Sequence

__all__ = ["Table", "banner"]


class Table:
    """A simple column-aligned text table.

    Cells are kept twice: rendered (``rows``, for the text/CSV views)
    and raw (for :meth:`records` / :meth:`to_json_payload`, so the
    archived JSON keeps numbers as numbers and booleans as booleans).
    """

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []
        self.raw_rows: list[list] = []

    def add_row(self, *cells) -> None:
        """Append a row (cells are str()-ed; length-checked)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.raw_rows.append(list(cells))
        self.rows.append([_render_cell(c) for c in cells])

    def render(self) -> str:
        """The aligned text rendering."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        header_line = "  ".join(
            h.ljust(widths[i]) for i, h in enumerate(self.headers)
        )
        out.write(header_line + "\n")
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in self.rows:
            out.write(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
                + "\n"
            )
        return out.getvalue()

    def to_csv(self) -> str:
        """A minimal CSV rendering (cells never contain commas here)."""
        lines = [",".join(self.headers)]
        lines.extend(",".join(row) for row in self.rows)
        return "\n".join(lines) + "\n"

    def records(self) -> list[dict]:
        """One dict per row, header → raw (JSON-coercible) value."""
        return [
            {
                header: _json_cell(cell)
                for header, cell in zip(self.headers, row)
            }
            for row in self.raw_rows
        ]

    def to_json_payload(self, name: str = "", extra: str = "") -> dict:
        """The machine-readable twin of :meth:`render`, as a plain dict
        ready for ``json.dumps`` — the benchmark harness archives this
        next to every ``.txt`` results file."""
        return {
            "name": name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": self.records(),
            "extra": extra,
        }

    def print(self) -> None:
        print(self.render())


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def _json_cell(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def banner(text: str) -> str:
    """A section banner for experiment output."""
    bar = "=" * max(len(text), 8)
    return f"\n{bar}\n{text}\n{bar}"

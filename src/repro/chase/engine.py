"""The generic chase engine.

One engine drives all four variants (Section 3 / the introduction):

=================  =============================  =========================
variant            activity of a trigger          simplification σ_i
=================  =============================  =========================
oblivious          never applied before (same π)  identity
semi-oblivious     never applied before with the  identity
                   same frontier image (skolem)
restricted         not satisfied in current F_i   identity
core               not satisfied in current F_i   retraction to a core
=================  =============================  =========================

Fair scheduling
---------------
Definition 3 requires every trigger to be eventually satisfied.  The
engine enumerates the active triggers of the current instance before
every application and picks the *oldest* one (age = step at which a
trigger with that canonical key was first seen, keys transported through
simplifications), breaking ties deterministically.  An unsatisfied
trigger therefore cannot be postponed forever: only the finitely many
older triggers can precede it, and each selection either satisfies or
retires one of them.

Termination
-----------
A chase run terminates when no active trigger remains; for the restricted
and core variants the final instance then satisfies all triggers, i.e. it
is a (finite) model of the KB — and, being the result of a fair
derivation, a universal one (Proposition 1).  The core chase terminates
exactly when the KB has a finite universal model (Deutsch, Nash & Remmel
2008), which is what the fes experiments check.

Checkpoint / resume and cooperative cancellation
------------------------------------------------
The engine's run state is a small, explicit value: the current instance,
the oblivious memory, the fair-scheduling ages, the fresh-null counter,
and the core-cadence bookkeeping.  :meth:`ChaseEngine.export_state`
captures it as a :class:`ChaseState`; :meth:`ChaseEngine.restore_state`
rebuilds a fresh engine from one (the trigger index, homomorphism memo
and core-maintenance certificates are *derived* structures and are
reconstructed on demand, so they never need to be persisted).  A
restored run continues the original derivation exactly: ages carry the
absolute birth steps via an internal offset, so fair scheduling makes
the same choices it would have made without the checkpoint, and the
restored fresh source invents the same nulls.  The service layer
(:mod:`repro.service`) persists these states as chase snapshots so
repeated queries against the same KB warm-start instead of re-chasing.

``run``/``resume`` also accept a ``should_stop`` callable, polled once
per iteration *before* any work for that step begins — the cooperative
cancellation checkpoint the service's per-job deadlines rely on.  A run
halted this way reports ``stopped=True`` on its result; its state is a
valid checkpoint (no step is ever half-applied).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..logic import homcache as _homcache
from ..logic import indexing as _indexing
from ..logic.atomset import AtomSet
from ..logic.coremaint import CoreMaintainer
from ..logic.cores import core_retraction
from ..logic.kb import KnowledgeBase
from ..logic.substitution import Substitution
from ..logic.terms import FreshVariableSource
from ..obs import observer as _observer_state
from ..obs.observer import Observer
from .derivation import Derivation, DerivationStep
from .trigger import Trigger, apply_trigger, triggers
from .compiled_index import CompiledTriggerIndex
from .trigger_index import TriggerIndex

__all__ = [
    "ChaseVariant",
    "ChaseResult",
    "ChaseState",
    "ChaseStateDelta",
    "ChaseEngine",
    "diff_chase_states",
    "apply_chase_state_delta",
    "merge_facts_into_state",
    "run_chase",
]


class ChaseVariant:
    """String constants naming the chase variants.

    ``FRUGAL`` is the variant of Konstantinidis & Ambite (reference [15]
    of the paper) that Section 3 points out also fits the derivation
    framework: it applies unsatisfied triggers like the restricted chase,
    but each simplification retracts only the *freshly created* nulls
    (never touching older terms).  It removes some — not all —
    redundancy, sitting strictly between the restricted and core chases,
    and its derivations are monotonic.
    """

    OBLIVIOUS = "oblivious"
    SEMI_OBLIVIOUS = "semi_oblivious"
    RESTRICTED = "restricted"
    FRUGAL = "frugal"
    CORE = "core"

    ALL = (OBLIVIOUS, SEMI_OBLIVIOUS, RESTRICTED, FRUGAL, CORE)


@dataclass
class ChaseResult:
    """Outcome of a chase run.

    Attributes
    ----------
    derivation:
        The full Definition-1 record of the run.
    terminated:
        True iff a fixpoint was reached (no active trigger left) within
        the step budget.
    variant:
        Which chase variant ran.
    stopped:
        True iff the run was halted by its ``should_stop`` callback (a
        deadline or cancellation) rather than by termination or the step
        budget.  A stopped run left a consistent state behind — no step
        is half-applied — so it can be checkpointed and resumed.
    applications:
        Number of rule applications performed (= len(derivation) - 1).
    """

    derivation: Derivation
    terminated: bool
    variant: str
    stopped: bool = False

    @property
    def applications(self) -> int:
        return len(self.derivation) - 1

    @property
    def final_instance(self) -> AtomSet:
        """The last instance — for a terminated restricted/core run this
        is a finite universal model of the KB."""
        return self.derivation.last_instance

    @property
    def retractions(self) -> int:
        """Steps whose simplification was a proper retraction (including
        the initial simplification of the facts when non-trivial)."""
        return sum(
            1 for step in self.derivation.steps if not step.is_identity_step()
        )

    @property
    def atoms_retracted(self) -> int:
        """Total atoms removed by simplifications over the whole run —
        the integral of the paper's per-step retraction series."""
        return sum(
            len(step.pre_instance) - len(step.instance)
            for step in self.derivation.steps
        )

    def __repr__(self) -> str:
        status = "terminated" if self.terminated else "budget-exhausted"
        return (
            f"ChaseResult({self.variant}, {status}, "
            f"{self.applications} applications, "
            f"{len(self.final_instance)} atoms)"
        )


@dataclass
class ChaseState:
    """A resumable checkpoint of a chase run (see the module docstring).

    Everything here is *primary* state: the derived accelerators
    (trigger index, positional atom index, homomorphism memo,
    core-maintenance certificates) are rebuilt on restore.  ``ages`` and
    ``applied_keys`` use the engine's canonical trigger keys —
    ``(rule_name, image)`` with ``image`` a sorted tuple of
    ``(Variable, Term)`` pairs — so a state is meaningful only together
    with the KB it was exported from;
    :mod:`repro.service.snapshots` pairs it with a KB fingerprint on
    disk for exactly that reason.
    """

    variant: str
    core_every: int
    fresh_prefix: str
    fresh_count: int
    instance: AtomSet
    applied_keys: set = field(default_factory=set)
    ages: dict = field(default_factory=dict)
    terminated: bool = False
    applications: int = 0
    applications_since_core: int = 0
    delta_since_core: list = field(default_factory=list)

    def __repr__(self) -> str:  # the default would dump whole instances
        return (
            f"ChaseState({self.variant}, {self.applications} applications, "
            f"{len(self.instance)} atoms, "
            f"{'terminated' if self.terminated else 'resumable'})"
        )


@dataclass
class ChaseStateDelta:
    """The difference between two checkpoints of one derivation.

    Produced by :func:`diff_chase_states` and undone by
    :func:`apply_chase_state_delta`; the snapshot store persists these
    instead of full states, so a run that advanced a few steps costs a
    few atoms on disk rather than a whole instance.  Scalars are stored
    as the *child's* values (they do not compress); collections are
    stored as set differences.  ``delta_since_core`` is replaced
    wholesale — it is bounded by the core cadence and usually tiny.
    """

    fresh_count: int
    terminated: bool
    applications: int
    applications_since_core: int
    added_atoms: list = field(default_factory=list)
    removed_atoms: list = field(default_factory=list)
    added_applied_keys: list = field(default_factory=list)
    removed_applied_keys: list = field(default_factory=list)
    ages_set: list = field(default_factory=list)
    ages_removed: list = field(default_factory=list)
    delta_since_core: list = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"ChaseStateDelta(+{len(self.added_atoms)}/"
            f"-{len(self.removed_atoms)} atoms, "
            f"-> {self.applications} applications)"
        )


def diff_chase_states(parent: ChaseState, child: ChaseState) -> ChaseStateDelta:
    """The delta taking *parent* to *child* (two checkpoints of the same
    configured derivation); ``apply_chase_state_delta(parent, delta)``
    reconstructs *child* exactly.

    The two states must agree on the configuration fields (variant,
    core cadence, fresh prefix) — a delta never crosses configurations.
    """
    for attr in ("variant", "core_every", "fresh_prefix"):
        if getattr(parent, attr) != getattr(child, attr):
            raise ValueError(
                f"cannot diff states with different {attr}: "
                f"{getattr(parent, attr)!r} vs {getattr(child, attr)!r}"
            )
    return ChaseStateDelta(
        fresh_count=child.fresh_count,
        terminated=child.terminated,
        applications=child.applications,
        applications_since_core=child.applications_since_core,
        added_atoms=child.instance.difference(parent.instance).sorted_atoms(),
        removed_atoms=parent.instance.difference(child.instance).sorted_atoms(),
        added_applied_keys=list(child.applied_keys - parent.applied_keys),
        removed_applied_keys=list(parent.applied_keys - child.applied_keys),
        ages_set=[
            (key, age)
            for key, age in child.ages.items()
            if parent.ages.get(key) != age
        ],
        ages_removed=[key for key in parent.ages if key not in child.ages],
        delta_since_core=list(child.delta_since_core),
    )


def apply_chase_state_delta(
    parent: ChaseState, delta: ChaseStateDelta
) -> ChaseState:
    """Reconstruct the child checkpoint from *parent* and *delta*.

    Pure: *parent* is not mutated, so a chain of deltas can be replayed
    against a base checkpoint read from disk.
    """
    instance = parent.instance.copy()
    for atom in delta.removed_atoms:
        instance.discard(atom)
    for atom in delta.added_atoms:
        instance.add(atom)
    applied = set(parent.applied_keys)
    applied.difference_update(delta.removed_applied_keys)
    applied.update(delta.added_applied_keys)
    ages = dict(parent.ages)
    for key in delta.ages_removed:
        ages.pop(key, None)
    ages.update(delta.ages_set)
    return ChaseState(
        variant=parent.variant,
        core_every=parent.core_every,
        fresh_prefix=parent.fresh_prefix,
        fresh_count=delta.fresh_count,
        instance=instance,
        applied_keys=applied,
        ages=ages,
        terminated=delta.terminated,
        applications=delta.applications,
        applications_since_core=delta.applications_since_core,
        delta_since_core=list(delta.delta_since_core),
    )


def merge_facts_into_state(state: ChaseState, atoms) -> ChaseState:
    """Graft extra input facts onto a checkpoint: the ancestor-resume
    primitive.

    Returns a new state whose instance additionally contains *atoms*;
    the checkpointed derivation prefix is untouched, so restoring the
    merged state and resuming is a fair continuation of a chase of the
    *grown* KB — the ancestor's applications happened against a subset
    of the facts (every trigger body that mapped into ``F_i`` still maps
    into ``F_i ∪ atoms``), and the rebuilt trigger index enumerates the
    new facts' triggers alongside the surviving old ones.  Soundness
    preconditions (the injected atoms share no nulls with the ancestor's
    facts or state) are the caller's responsibility —
    :meth:`repro.service.snapshots.SnapshotStore.resolve_ancestor`
    enforces them before handing out a state.

    ``terminated`` is cleared when anything was actually new (the old
    fixpoint says nothing about the grown instance), and the additions
    are appended to ``delta_since_core`` so the incremental core
    maintainer folds them into its next cadence retraction.
    """
    fresh = [atom for atom in atoms if atom not in state.instance]
    instance = state.instance.copy()
    for atom in fresh:
        instance.add(atom)
    return ChaseState(
        variant=state.variant,
        core_every=state.core_every,
        fresh_prefix=state.fresh_prefix,
        fresh_count=state.fresh_count,
        instance=instance,
        applied_keys=set(state.applied_keys),
        ages=dict(state.ages),
        terminated=state.terminated and not fresh,
        applications=state.applications,
        applications_since_core=state.applications_since_core,
        delta_since_core=list(state.delta_since_core) + fresh,
    )


class ChaseEngine:
    """A configurable chase driver.

    Parameters
    ----------
    kb:
        The knowledge base to chase.
    variant:
        One of :class:`ChaseVariant`.
    core_every:
        For the core variant: retract to a core after every ``k``-th rule
        application (default 1 — the canonical "each σ_i produces a core"
        reading; any finite value is a legitimate core chase per
        Section 3).
    fresh_prefix:
        Name prefix for invented nulls.
    observer:
        An :class:`repro.obs.Observer` receiving the engine's telemetry
        events.  Defaults to the process-global observer
        (:func:`repro.obs.set_observer`); pass one explicitly for scoped
        instrumentation.  When no observer is installed the engine pays
        a single identity check per event site.
    use_index:
        When True (the default) the engine maintains the live-trigger
        pool incrementally with a :class:`~repro.chase.trigger_index.
        TriggerIndex`, lets the homomorphism layer use its positional
        atom index and memo cache, and — for the core variant, unless
        :func:`repro.logic.indexing.set_core_maintenance` switched it
        off — computes per-step retractions with the incremental
        :class:`~repro.logic.coremaint.CoreMaintainer`.  When False the
        engine re-enumerates every trigger from scratch each step
        **and** scopes off the atom index, memo cache and core
        maintainer for the duration of the run — the fully naive
        reference path the differential tests compare against.
    use_compiled:
        When True (the default) and the index is on, the engine runs the
        compiled kernel (ISSUE 7): homomorphism searches evaluate as
        join plans over interned int tuples and the trigger pool is
        maintained by a :class:`~repro.chase.compiled_index.
        CompiledTriggerIndex` with semi-naive delta joins.  When False
        the compiled layer is scoped off for the duration of the run and
        the object-level indexed engine — the kernel's differential
        oracle, with identical witnesses and application counts — runs
        instead.  (``--no-compiled`` on the CLI.)
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        variant: str = ChaseVariant.RESTRICTED,
        core_every: int = 1,
        fresh_prefix: str = "_n",
        observer: Optional[Observer] = None,
        use_index: bool = True,
        use_compiled: bool = True,
    ):
        if variant not in ChaseVariant.ALL:
            raise ValueError(f"unknown chase variant {variant!r}")
        if core_every < 1:
            raise ValueError("core_every must be >= 1")
        self.kb = kb
        self.variant = variant
        self.core_every = core_every
        self.observer = observer
        self.use_index = use_index
        self.use_compiled = use_compiled
        self._fresh = FreshVariableSource(prefix=fresh_prefix)

    # ------------------------------------------------------------------

    def run(
        self,
        max_steps: int = 1000,
        on_step: Optional[Callable[[DerivationStep], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> ChaseResult:
        """Run up to *max_steps* rule applications from the facts.

        ``on_step`` (if given) is invoked with every recorded step —
        the experiment harness uses it to measure per-step treewidths
        without retaining anything extra.  ``should_stop`` (if given) is
        polled before every step; once it returns True the run halts
        with ``stopped=True`` on the result.  The engine keeps its state
        afterward, so :meth:`resume` can continue the same derivation.
        """
        with self._index_scope():
            raw_facts = self.kb.facts.copy()
            self._maintainer = self._make_maintainer()
            self._delta_since_core: list = []
            if self.variant == ChaseVariant.CORE:
                if self._maintainer is not None:
                    sigma0 = self._maintainer.retract(raw_facts)
                else:
                    sigma0 = core_retraction(raw_facts)
            else:
                sigma0 = Substitution.identity()
            current = sigma0.apply(raw_facts)
            self._steps = [DerivationStep(0, None, raw_facts, sigma0, current)]
            self._current = current
            self._applied_keys: set = set()  # oblivious / semi-oblivious memory
            self._ages: dict = {}  # canonical trigger key -> birth step
            self._terminated = False
            self._applications_since_core = 0
            #: Applications recorded before this engine's own _steps —
            #: nonzero only after restore_state(); keeps ages and totals
            #: absolute across checkpoints.
            self.applications_offset = 0
            self._install_index(current)
            if on_step is not None:
                on_step(self._steps[0])
            return self._advance(max_steps, on_step, should_stop)

    def resume(
        self,
        extra_steps: int,
        on_step: Optional[Callable[[DerivationStep], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> ChaseResult:
        """Continue the previous :meth:`run` (or :meth:`restore_state`)
        for *extra_steps* more rule applications; the returned result
        covers the derivation since the last run/restore.

        The continuation is seamless: fresh-variable numbering, fair
        scheduling ages, and the oblivious memory all carry over, so
        ``run(a); resume(b)`` records the same derivation as
        ``run(a + b)``.
        """
        if not hasattr(self, "_steps"):
            raise RuntimeError("resume() requires a prior run()")
        with self._index_scope():
            return self._advance(extra_steps, on_step, should_stop)

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    @property
    def current_instance(self) -> AtomSet:
        """The latest ``F_i`` of the run in progress (read-only use)."""
        if not hasattr(self, "_steps"):
            raise RuntimeError("current_instance requires a prior run()")
        return self._current

    def export_state(self) -> ChaseState:
        """Capture the run as a resumable :class:`ChaseState`.

        The state is a deep-enough copy: mutating the engine afterwards
        (more :meth:`resume` steps) does not corrupt it.
        """
        if not hasattr(self, "_steps"):
            raise RuntimeError("export_state() requires a prior run()")
        return ChaseState(
            variant=self.variant,
            core_every=self.core_every,
            fresh_prefix=self._fresh.prefix,
            fresh_count=self._fresh.count,
            instance=self._current.copy(),
            applied_keys=set(self._applied_keys),
            ages=dict(self._ages),
            terminated=self._terminated,
            applications=len(self._steps) - 1 + self.applications_offset,
            applications_since_core=self._applications_since_core,
            delta_since_core=list(self._delta_since_core),
        )

    def restore_state(self, state: ChaseState) -> None:
        """Adopt *state* as this engine's run state; :meth:`resume`
        then continues the checkpointed derivation exactly.

        The engine must have been constructed with the same KB, variant
        and core cadence the state was exported under (the KB pairing is
        the caller's responsibility — see
        :mod:`repro.service.snapshots`, which enforces it with a
        fingerprint).  Derived structures (trigger index, core
        certificates) are rebuilt from the restored instance.
        """
        if state.variant != self.variant:
            raise ValueError(
                f"state is a {state.variant!r} checkpoint, engine runs "
                f"{self.variant!r}"
            )
        if state.core_every != self.core_every:
            raise ValueError(
                f"state was exported at core_every={state.core_every}, "
                f"engine uses {self.core_every}"
            )
        with self._index_scope():
            current = state.instance.copy()
            self._fresh = FreshVariableSource(
                prefix=state.fresh_prefix, start=state.fresh_count
            )
            self._maintainer = self._make_maintainer()
            self._delta_since_core = list(state.delta_since_core)
            self._steps = [
                DerivationStep(
                    0, None, current, Substitution.identity(), current
                )
            ]
            self._current = current
            self._applied_keys = set(state.applied_keys)
            self._ages = dict(state.ages)
            self._terminated = state.terminated
            self._applications_since_core = state.applications_since_core
            self.applications_offset = state.applications
            self._install_index(current)

    def _make_maintainer(self) -> Optional[CoreMaintainer]:
        # The incremental maintainer needs the per-step delta, which
        # only the indexed engine computes; the naive path keeps the
        # from-scratch core_retraction (the differential reference).
        if (
            self.variant == ChaseVariant.CORE
            and self.use_index
            and _indexing.core_maintenance_enabled()
        ):
            return CoreMaintainer()
        return None

    def _install_index(self, current: AtomSet) -> None:
        if self.use_index:
            # The compiled index engages only when the compiled layer is
            # actually on in the ambient configuration (it may be scoped
            # off by ``no_compiled()`` or ``use_compiled=False``); its
            # pool contents and ordering are identical either way.
            cls = (
                CompiledTriggerIndex
                if (
                    self.use_compiled
                    and _indexing.compiled_enabled()
                    and _indexing.atom_index_enabled()
                )
                else TriggerIndex
            )
            self._index: Optional[TriggerIndex] = cls(
                self.kb.rules,
                current,
                track_satisfaction=self.variant
                not in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS),
            )
        else:
            self._index = None

    def _index_scope(self):
        """The indexing configuration a run executes under: the ambient
        one normally, the compiled layer scoped off for
        ``use_compiled=False``, everything scoped off for the naive
        path."""
        if not self.use_index:
            return _indexing.no_index()
        if not self.use_compiled:
            return _indexing.configured(compiled=False)
        return nullcontext()

    def _advance(
        self,
        budget: int,
        on_step: Optional[Callable[[DerivationStep], None]],
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> ChaseResult:
        observer = (
            self.observer
            if self.observer is not None
            else _observer_state.current
        )
        performed = 0
        stopped = False
        while performed < budget and not self._terminated:
            # Cooperative cancellation checkpoint: between steps the
            # engine state is always consistent, so a deadline can halt
            # the run here and the state remains checkpointable.
            if should_stop is not None and should_stop():
                stopped = True
                break
            step_index = len(self._steps)
            birth = step_index + self.applications_offset
            if observer is not None:
                observer.chase_step_started(
                    step=step_index,
                    variant=self.variant,
                    atoms=len(self._current),
                )
            if self._index is not None:
                active = self._indexed_active_triggers()
            else:
                active = self._active_triggers(
                    self._current, self._applied_keys
                )
            if not active:
                self._terminated = True
                break
            for trigger in active:
                self._ages.setdefault(self._age_key(trigger), birth)
            chosen = min(
                active,
                key=lambda tr: (self._ages[self._age_key(tr)], tr.sort_key()),
            )
            if observer is not None:
                observer.trigger_selected(
                    step=step_index,
                    rule=chosen.rule.name,
                    active=len(active),
                )
            atoms_before = len(self._current)
            pre_instance, pi_safe = apply_trigger(
                self._current, chosen, self._fresh
            )
            self._applied_keys.add(self._memory_key(chosen))
            delta: list = []
            if self._index is not None:
                seen_delta: set = set()
                for head_atom in chosen.rule.head.sorted_atoms():
                    atom = pi_safe.apply_atom(head_atom)
                    if atom not in seen_delta and atom not in self._current:
                        seen_delta.add(atom)
                        delta.append(atom)

            self._applications_since_core += 1
            if self._maintainer is not None:
                self._delta_since_core.extend(delta)
            if (
                self.variant == ChaseVariant.CORE
                and self._applications_since_core >= self.core_every
            ):
                if self._maintainer is not None:
                    sigma = self._maintainer.retract(
                        pre_instance, self._delta_since_core
                    )
                    self._delta_since_core = []
                else:
                    sigma = core_retraction(pre_instance)
                self._applications_since_core = 0
            elif self.variant == ChaseVariant.FRUGAL:
                sigma = _frugal_retraction(pre_instance, self._current.terms())
            else:
                sigma = Substitution.identity()
            self._current = sigma.apply(pre_instance)
            proper_retraction = len(sigma.drop_trivial()) > 0
            if self._index is not None:
                delta_stats = self._index.apply_delta(
                    pre_instance, delta, satisfied_hint=chosen
                )
                transport_stats = {"transported": 0, "collapsed": 0}
                if proper_retraction:
                    transport_stats = self._index.transport(sigma)
                    if _indexing.hom_memo_enabled():
                        # The pre-application instance is superseded for
                        # good once a proper retraction fires.
                        _homcache.get_cache().invalidate(
                            pre_instance.fingerprint()
                        )
                if observer is not None:
                    observer.trigger_index_update(
                        step=step_index,
                        delta_atoms=delta_stats["delta_atoms"],
                        triggers_new=delta_stats["triggers_new"],
                        triggers_reused=delta_stats["triggers_reused"],
                        satisfaction_rechecks=delta_stats[
                            "satisfaction_rechecks"
                        ],
                        transported=transport_stats["transported"],
                        collapsed=transport_stats["collapsed"],
                    )
            step = DerivationStep(
                step_index, chosen, pre_instance, sigma, self._current
            )
            self._steps.append(step)
            performed += 1
            if observer is not None:
                observer.trigger_retired(
                    step=step_index, rule=chosen.rule.name, reason="applied"
                )
                observer.chase_step_finished(
                    step=step_index,
                    rule=chosen.rule.name,
                    atoms_before=atoms_before,
                    atoms_applied=len(pre_instance),
                    atoms_after=len(self._current),
                    retracted=len(pre_instance) - len(self._current),
                )
            if on_step is not None:
                on_step(step)
            if proper_retraction:
                before_transport = len(self._ages)
                self._ages = self._transport_ages(self._ages, sigma)
                if observer is not None:
                    collapsed = before_transport - len(self._ages)
                    if collapsed:
                        observer.trigger_retired(
                            step=step_index,
                            rule=None,
                            reason="collapsed",
                            count=collapsed,
                        )

        derivation = Derivation(self.kb, list(self._steps))
        return ChaseResult(
            derivation, self._terminated, self.variant, stopped=stopped
        )

    # ------------------------------------------------------------------
    # variant plumbing
    # ------------------------------------------------------------------

    def _indexed_active_triggers(self) -> list[Trigger]:
        """The active pool, read off the incremental index: the same set
        :meth:`_active_triggers` enumerates from scratch."""
        if self.variant in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
            return [
                trigger
                for trigger in self._index.live_triggers()
                if self._memory_key(trigger) not in self._applied_keys
            ]
        return self._index.unsatisfied_triggers()

    def _active_triggers(self, instance: AtomSet, applied_keys: set) -> list[Trigger]:
        active: list[Trigger] = []
        for rule in self.kb.rules:
            for trigger in triggers(rule, instance):
                if self.variant == ChaseVariant.OBLIVIOUS:
                    if self._memory_key(trigger) not in applied_keys:
                        active.append(trigger)
                elif self.variant == ChaseVariant.SEMI_OBLIVIOUS:
                    if self._memory_key(trigger) not in applied_keys:
                        active.append(trigger)
                else:  # restricted / core
                    if not trigger.is_satisfied_in(instance):
                        active.append(trigger)
        return active

    def _memory_key(self, trigger: Trigger):
        """What the oblivious variants remember about an application."""
        if self.variant == ChaseVariant.SEMI_OBLIVIOUS:
            return (trigger.rule.name, trigger.frontier_image())
        return (trigger.rule.name, trigger.full_image())

    @staticmethod
    def _age_key(trigger: Trigger):
        """Canonical identity of a trigger for age tracking."""
        return (trigger.rule.name, trigger.full_image())

    @staticmethod
    def _transport_ages(ages: dict, sigma: Substitution) -> dict:
        """Carry trigger ages across a simplification: the transported
        trigger ``σ(tr)`` inherits the age of ``tr`` (keeping the oldest
        when several collapse onto the same key)."""
        transported: dict = {}
        for (rule_name, image), age in ages.items():
            new_image = tuple(
                (var, sigma.apply_term(term)) for var, term in image
            )
            key = (rule_name, new_image)
            if key not in transported or transported[key] > age:
                transported[key] = age
        return transported


def _frugal_retraction(pre_instance: AtomSet, old_terms) -> Substitution:
    """The frugal simplification: a retraction of the post-application
    instance that is the identity on the pre-existing terms and folds
    away redundant *fresh* nulls (greedily, one at a time).

    Because old terms are pinned, frugal derivations are monotonic; they
    remove strictly less redundancy than a core retraction (which may
    fold old structure onto new, as the staircase shows)."""
    from ..logic.homomorphism import find_homomorphism
    from ..logic.terms import Variable

    old_variables = {t for t in old_terms if isinstance(t, Variable)}
    pinned = Substitution({v: v for v in old_variables})
    current = pre_instance
    total = Substitution.identity()
    fresh = sorted(
        (v for v in pre_instance.variables() if v not in old_variables),
        key=lambda v: (v.rank, v.name),
    )
    for null in fresh:
        hom = find_homomorphism(
            current, current, partial=pinned, forbidden_images=[null]
        )
        if hom is None:
            continue
        total = hom.compose(total)
        current = hom.apply(current)
    if not total:
        return total
    return total.fold_to_retraction(pre_instance)


def run_chase(
    kb: KnowledgeBase,
    variant: str = ChaseVariant.RESTRICTED,
    max_steps: int = 1000,
    core_every: int = 1,
    on_step: Optional[Callable[[DerivationStep], None]] = None,
    observer: Optional[Observer] = None,
    use_index: bool = True,
    use_compiled: bool = True,
    should_stop: Optional[Callable[[], bool]] = None,
) -> ChaseResult:
    """One-shot convenience wrapper around :class:`ChaseEngine`."""
    engine = ChaseEngine(
        kb,
        variant=variant,
        core_every=core_every,
        observer=observer,
        use_index=use_index,
        use_compiled=use_compiled,
    )
    return engine.run(
        max_steps=max_steps, on_step=on_step, should_stop=should_stop
    )

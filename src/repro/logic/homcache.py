"""Memoization of single-witness homomorphism checks.

The chase re-asks the same questions constantly: the entailment race of
:mod:`repro.query.entailment` re-runs deterministic chases per candidate
tuple (:mod:`repro.query.certain`), and every such run repeats the same
satisfaction and core checks against the same instances.  All of those
reduce to :func:`repro.logic.homomorphism.find_homomorphism`, whose
result is a pure function of its arguments — so the library keeps one
process-global memo of ``(source, target, partial, forbidden, injective)
→ witness-or-None``.

Atomsets are mutable, so they cannot key the memo directly; instead the
key holds their :meth:`~repro.logic.atomset.AtomSet.fingerprint` — an
order-independent O(1) summary maintained incrementally by the atomset
itself.  A mutation changes the fingerprint, so entries for a stale state
are simply never hit again.  *Retractions* additionally call
:meth:`HomomorphismCache.invalidate` with the fingerprint of the instance
they fold away (see :mod:`repro.logic.cores` and the chase engine): a
retracted instance is gone for good, and dropping its entries eagerly
keeps the memo from filling up with dead states.

The cache is bounded (FIFO eviction of the oldest entries) and reports
hits/misses through :meth:`repro.obs.Observer.hom_memo_lookup`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .substitution import Substitution

__all__ = ["HomomorphismCache", "get_cache", "set_cache"]

#: Sentinel distinguishing "not cached" from a cached negative result.
_MISSING = object()


class HomomorphismCache:
    """A bounded memo of single-witness homomorphism search results.

    Parameters
    ----------
    max_entries:
        Eviction threshold; when exceeded, the oldest entries are dropped
        (insertion order) until the cache is back at half capacity.
    """

    __slots__ = ("max_entries", "_entries", "_by_fingerprint", "hits", "misses", "invalidations")

    def __init__(self, max_entries: int = 65536):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: dict = {}
        #: fingerprint -> set of keys mentioning it (source or target).
        self._by_fingerprint: dict = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------

    def lookup(self, key: tuple) -> Tuple[bool, Optional[Substitution]]:
        """Return ``(hit, value)``; *value* is only meaningful on a hit."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, key: tuple, value: Optional[Substitution]) -> None:
        """Record the result of a search (*value* may be None: a cached
        refutation is as valuable as a cached witness)."""
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._evict()
        self._entries[key] = value
        source_fp, target_fp = key[0], key[1]
        self._by_fingerprint.setdefault(source_fp, set()).add(key)
        if target_fp != source_fp:
            self._by_fingerprint.setdefault(target_fp, set()).add(key)

    def invalidate(self, fingerprint: tuple) -> int:
        """Drop every entry whose source or target carries *fingerprint*.

        Called when an instance is retracted away (core/frugal
        simplification): that exact atom content ceases to exist, so its
        entries would only ever occupy space.  Returns how many entries
        were dropped.
        """
        keys = self._by_fingerprint.pop(fingerprint, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            if self._entries.pop(key, _MISSING) is not _MISSING:
                dropped += 1
            other = key[1] if key[0] == fingerprint else key[0]
            bucket = self._by_fingerprint.get(other)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_fingerprint[other]
        self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()
        self._by_fingerprint.clear()

    def snapshot(self) -> dict:
        """Counters + size, ready for logs and metric dumps."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }

    # ------------------------------------------------------------------

    def _evict(self) -> None:
        """Drop the oldest half of the entries (dict preserves insertion
        order, so a plain prefix slice is FIFO)."""
        keep_from = len(self._entries) - self.max_entries // 2
        doomed = [key for index, key in enumerate(self._entries) if index < keep_from]
        for key in doomed:
            del self._entries[key]
            for fp in (key[0], key[1]):
                bucket = self._by_fingerprint.get(fp)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._by_fingerprint[fp]


#: The process-global memo consulted by ``find_homomorphism`` (subject to
#: :func:`repro.logic.indexing.hom_memo_enabled`).
_cache = HomomorphismCache()


def get_cache() -> HomomorphismCache:
    """The process-global homomorphism memo."""
    return _cache


def set_cache(cache: HomomorphismCache) -> HomomorphismCache:
    """Replace the process-global memo; returns the previous one (tests
    install a fresh bounded cache to observe eviction/invalidation)."""
    global _cache
    previous = _cache
    _cache = cache
    return previous

"""GraphViz DOT export for the library's structures.

Three renderers, all returning plain DOT text (write it to a file and
run ``dot -Tsvg``):

* :func:`instance_to_dot` — an atomset as a graph: terms are nodes
  (constants boxed), binary atoms are labelled edges, unary atoms become
  node annotations, wider atoms get a hyperedge node;
* :func:`decomposition_to_dot` — a tree decomposition with bag contents;
* :func:`derivation_to_dot` — the step chain of a chase run with rule
  labels and instance sizes.
"""

from __future__ import annotations


from ..chase.derivation import Derivation
from ..logic.atomset import AtomSet
from ..logic.terms import Constant, Term
from ..treewidth.decomposition import TreeDecomposition

__all__ = ["instance_to_dot", "decomposition_to_dot", "derivation_to_dot"]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def instance_to_dot(atoms: AtomSet, name: str = "instance") -> str:
    """Render an atomset as a DOT digraph."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    annotations: dict[Term, list[str]] = {}
    for at in atoms.sorted_atoms():
        if at.predicate.arity == 1:
            annotations.setdefault(at.args[0], []).append(at.predicate.name)
    for term in sorted(atoms.terms(), key=lambda t: t.name):
        label = term.name
        extras = annotations.get(term)
        if extras:
            label += "\\n" + ",".join(sorted(extras))
        shape = "box" if isinstance(term, Constant) else "ellipse"
        lines.append(f"  {_quote(term.name)} [label={_quote(label)} shape={shape}];")
    hyper_index = 0
    for at in atoms.sorted_atoms():
        if at.predicate.arity == 2:
            source, target = at.args
            lines.append(
                f"  {_quote(source.name)} -> {_quote(target.name)} "
                f"[label={_quote(at.predicate.name)}];"
            )
        elif at.predicate.arity > 2:
            hyper = f"__hyper{hyper_index}"
            hyper_index += 1
            lines.append(
                f"  {_quote(hyper)} [label={_quote(at.predicate.name)} shape=diamond];"
            )
            for position, term in enumerate(at.args):
                lines.append(
                    f"  {_quote(hyper)} -> {_quote(term.name)} "
                    f"[label={_quote(str(position))}];"
                )
    lines.append("}")
    return "\n".join(lines) + "\n"


def decomposition_to_dot(
    decomposition: TreeDecomposition, name: str = "decomposition"
) -> str:
    """Render a tree decomposition: one node per bag."""
    lines = [f"graph {name} {{", "  node [shape=box];"]
    for index, bag in enumerate(decomposition.bags):
        content = ", ".join(sorted(str(t) for t in bag)) or "(empty)"
        lines.append(f"  b{index} [label={_quote(f'{index}: {{{content}}}')}];")
    for u, v in decomposition.edges:
        lines.append(f"  b{u} -- b{v};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def derivation_to_dot(derivation: Derivation, name: str = "derivation") -> str:
    """Render a derivation as a step chain annotated with the applied
    rule, the simplification kind, and the instance size."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for step in derivation:
        if step.trigger is None:
            label = f"F_0\\n{len(step.instance)} atoms"
        else:
            simplification = "id" if step.is_identity_step() else "retract"
            label = (
                f"F_{step.index}\\n{step.trigger.rule.name} / {simplification}"
                f"\\n{len(step.instance)} atoms"
            )
        lines.append(f"  s{step.index} [label={_quote(label)}];")
        if step.index > 0:
            lines.append(f"  s{step.index - 1} -> s{step.index};")
    lines.append("}")
    return "\n".join(lines) + "\n"

"""Tests for the job executor (repro.service.executor).

The process-pool paths (workers > 0) use the ``spawn`` start method, so
each test that exercises them pays interpreter startup; the bulk of the
coverage therefore runs in the ``workers=0`` in-process mode, with one
real multi-process test for the fork/spawn-safe metrics protocol.
"""

import pytest

from repro import staircase_kb
from repro.logic.serialization import dump_kb
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, observing
from repro.service.executor import JobExecutor, _run_job_local
from repro.service.jobs import JobRequest

STAIRCASE = dump_kb(staircase_kb())
STAIR_QUERY = "v(X, Y), v(Y, Z)"


def entail_request(**overrides):
    fields = dict(
        op="entail", kb_text=STAIRCASE, query=STAIR_QUERY, max_steps=60
    )
    fields.update(overrides)
    return JobRequest(**fields)


class TestInProcessExecutor:
    def test_submit_resolves_to_result(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(0, snapshot_dir=tmp_path, registry=registry) as ex:
            result = ex.submit(entail_request()).result(timeout=60)
        assert result.ok
        assert result.entailed is True
        assert result.seconds > 0

    def test_sequential_repeat_warm_starts(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(0, snapshot_dir=tmp_path, registry=registry) as ex:
            first = ex.submit(entail_request()).result(timeout=60)
            second = ex.submit(entail_request()).result(timeout=60)
        assert not first.warm
        assert second.warm and second.applications == 0

    def test_job_error_resolves_not_raises(self, tmp_path):
        with JobExecutor(0, snapshot_dir=tmp_path) as ex:
            result = ex.submit(
                JobRequest(op="chase", kb_text="garbage")
            ).result(timeout=60)
        assert not result.ok
        assert result.error

    def test_worker_metrics_merged_into_registry(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(0, snapshot_dir=tmp_path, registry=registry) as ex:
            ex.submit(entail_request()).result(timeout=60)
        snap = registry.snapshot()
        assert snap["chase.steps"]["value"] > 0
        assert snap["service.queue_depth"]["value"] == 0

    def test_queue_depth_counts_down_to_zero(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(0, snapshot_dir=tmp_path, registry=registry) as ex:
            futures = [ex.submit(entail_request()) for _ in range(3)]
            for future in futures:
                future.result(timeout=60)
        assert ex.pending == 0
        assert registry.gauge("service.queue_depth").value == 0

    def test_service_job_event_reported(self, tmp_path):
        events = []

        class Spy(Observer):
            def service_job(self, **kw):
                events.append(kw)

        with observing(Spy()):
            with JobExecutor(0, snapshot_dir=tmp_path) as ex:
                ex.submit(entail_request()).result(timeout=60)
                ex.submit(entail_request()).result(timeout=60)
        assert len(events) == 2
        assert events[0]["ok"] and not events[0]["warm"]
        assert events[1]["warm"]
        assert all(event["seconds"] > 0 for event in events)

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            JobExecutor(-1)


class TestWorkerBody:
    def test_run_job_local_returns_result_and_metrics(self, tmp_path):
        result_obj, metrics = _run_job_local(
            entail_request().to_obj(), str(tmp_path)
        )
        assert result_obj["ok"]
        assert result_obj["entailed"] is True
        assert metrics["chase.steps"]["value"] > 0

    def test_run_job_local_without_store(self):
        result_obj, metrics = _run_job_local(entail_request().to_obj(), None)
        assert result_obj["ok"] and not result_obj["warm"]


class TestProcessPool:
    def test_spawn_workers_answer_and_merge_metrics(self, tmp_path):
        registry = MetricsRegistry()
        with JobExecutor(2, snapshot_dir=tmp_path, registry=registry) as ex:
            futures = [ex.submit(entail_request()) for _ in range(4)]
            results = [future.result(timeout=300) for future in futures]
        assert all(result.ok and result.entailed for result in results)
        # at least one job found the snapshot a sibling saved
        snap = registry.snapshot()
        assert snap["chase.steps"]["value"] > 0  # merged from workers
        assert snap["service.queue_depth"]["value"] == 0

"""Tests for repro.analysis.rule_dependencies."""

from repro.analysis.rule_dependencies import (
    atoms_may_unify,
    is_rule_acyclic,
    rule_dependency_edges,
    rule_depends_on,
    rule_strata,
)
from repro.chase import run_chase
from repro.chase.engine import ChaseVariant
from repro.kbs.generators import layered_kb
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import (
    bts_not_fes_kb,
    transitive_closure_kb,
    weakly_acyclic_kb,
)
from repro.logic.parser import parse_atom, parse_rule, parse_rules


class TestUnification:
    def test_same_predicate_variables_unify(self):
        assert atoms_may_unify(parse_atom("p(X, Y)"), parse_atom("p(U, V)"))

    def test_different_predicates_do_not(self):
        assert not atoms_may_unify(parse_atom("p(X)"), parse_atom("q(X)"))

    def test_constant_clash_detected(self):
        assert not atoms_may_unify(parse_atom("p(a, X)"), parse_atom("p(b, Y)"))

    def test_constant_variable_unify(self):
        assert atoms_may_unify(parse_atom("p(a)"), parse_atom("p(X)"))


class TestDependencies:
    def test_head_feeding_body(self):
        r1 = parse_rule("[R1] p(X) -> q(X)")
        r2 = parse_rule("[R2] q(X) -> r(X)")
        assert rule_depends_on(r2, r1)
        assert not rule_depends_on(r1, r2)

    def test_self_dependency_of_recursive_rule(self):
        rule = parse_rule("[T] e(X, Y), e(Y, Z) -> e(X, Z)")
        assert rule_depends_on(rule, rule)

    def test_edge_enumeration(self):
        rules = parse_rules("[A] p(X) -> q(X)\n[B] q(X) -> r(X)")
        edges = {(e.name, l.name) for e, l in rule_dependency_edges(rules)}
        assert edges == {("A", "B")}


class TestAcyclicity:
    def test_pipeline_is_acyclic(self):
        assert is_rule_acyclic(weakly_acyclic_kb().rules)

    def test_layered_kb_is_acyclic(self):
        assert is_rule_acyclic(layered_kb(4).rules)

    def test_recursive_rules_cyclic(self):
        assert not is_rule_acyclic(transitive_closure_kb(2).rules)
        assert not is_rule_acyclic(bts_not_fes_kb().rules)
        assert not is_rule_acyclic(staircase_kb().rules)

    def test_strata_ordering(self):
        strata = rule_strata(layered_kb(3).rules)
        assert strata is not None
        assert [s[0] for s in strata] == ["L0f0", "L1f0", "L2f0"]

    def test_strata_none_on_cycle(self):
        assert rule_strata(transitive_closure_kb(2).rules) is None

    def test_acyclic_kbs_terminate_under_all_variants(self):
        kb = layered_kb(3)
        for variant in ChaseVariant.ALL:
            assert run_chase(kb, variant=variant, max_steps=100).terminated

"""P1c — engine performance: chase throughput by variant.

Applications per second across the four variants on terminating and
diverging workloads; the core variant pays per-step core computation,
the restricted variant pays satisfaction checks, the oblivious variants
pay almost nothing — the classical trade-off from the introduction.

``bench_perf_chase_table`` additionally archives a machine-readable
timing table (``results/perf_chase.json``) that the CI perf gate diffs
against the committed baseline (``baselines/perf_chase.json``) with
``compare_results.py``.  ``REPRO_ENGINE=naive|indexed|compiled``
selects the engine path to time (default: compiled, the full engine;
the legacy ``REPRO_NAIVE=1`` still means naive) and suffixes the
results files accordingly — the committed ``perf_chase.json`` baseline
is a naive-path table, ``perf_chase_indexed.json`` /
``perf_chase_compiled.json`` the per-engine ones the compiled CI gate
uses; see docs/PERFORMANCE.md.
"""

import time

import pytest

from repro.chase.engine import ChaseVariant, run_chase
from repro.kbs.elevator import elevator_kb
from repro.kbs.generators import layered_kb
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import bts_not_fes_kb, transitive_closure_kb
from repro.logic.homcache import get_cache
from repro.util import Table

from conftest import current_engine, engine_scope, quiesced_gc, save_table


@pytest.mark.parametrize("variant", ChaseVariant.ALL)
def bench_terminating_datalog(benchmark, variant):
    """Transitive closure of a 5-chain under each variant."""
    kb = transitive_closure_kb(5)
    result = benchmark(lambda: run_chase(kb, variant=variant, max_steps=300))
    assert result.terminated


@pytest.mark.parametrize("variant", [ChaseVariant.RESTRICTED, ChaseVariant.CORE])
def bench_diverging_chain(benchmark, variant):
    """20 applications on the infinite-chain KB."""
    kb = bts_not_fes_kb()
    result = benchmark(lambda: run_chase(kb, variant=variant, max_steps=20))
    assert result.applications == 20


def bench_layered_existentials(benchmark):
    """A 5-layer existential cascade (weakly acyclic, terminating)."""
    kb = layered_kb(5)
    result = benchmark(lambda: run_chase(kb, variant=ChaseVariant.RESTRICTED, max_steps=100))
    assert result.terminated


def bench_staircase_core_chase_short(benchmark):
    """The headline workload: 12 core-chase applications on K_h
    (each step folds a freshly grown staircase fragment)."""
    kb = staircase_kb()
    result = benchmark.pedantic(
        lambda: run_chase(kb, variant=ChaseVariant.CORE, max_steps=12),
        rounds=2,
        iterations=1,
    )
    assert result.applications == 12


# ---------------------------------------------------------------------------
# the perf-gate timing table
# ---------------------------------------------------------------------------

#: (workload, kb factory, variant, step budget) — the gate's row set.
#: The staircase/elevator core rows are the paper's deep-retraction
#: workloads and the ones the indexed engine must keep fast.
PERF_CHASE_ROWS = (
    ("staircase", staircase_kb, ChaseVariant.CORE, 45),
    ("staircase", staircase_kb, ChaseVariant.RESTRICTED, 45),
    ("elevator", elevator_kb, ChaseVariant.CORE, 35),
    ("elevator", elevator_kb, ChaseVariant.RESTRICTED, 30),
    ("layered-6x2", lambda: layered_kb(6, fanout=2), ChaseVariant.RESTRICTED, 200),
    ("transitive-5", lambda: transitive_closure_kb(5), ChaseVariant.CORE, 300),
)


def _timed_chase(make_kb, variant, steps, repeats=3):
    """Best-of-*repeats* wall time; the memo is cleared before every
    measurement so each run is cold and comparable across processes."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        get_cache().clear()
        kb = make_kb()
        with quiesced_gc():
            started = time.perf_counter()
            result = run_chase(kb, variant=variant, max_steps=steps)
            best = min(best, time.perf_counter() - started)
    return best, result


def bench_perf_chase_table():
    """Archive the timing table the CI perf gate compares (one row per
    workload x variant; metric column: ``seconds``)."""
    engine = current_engine()
    table = Table(
        ["workload", "variant", "steps", "applications", "seconds", "apps_per_sec"],
        title=f"perf: chase wall time per workload ({engine} engine)",
    )
    with engine_scope(engine):
        for workload, make_kb, variant, steps in PERF_CHASE_ROWS:
            seconds, result = _timed_chase(make_kb, variant, steps)
            table.add_row(
                workload,
                variant,
                steps,
                result.applications,
                round(seconds, 4),
                round(result.applications / max(seconds, 1e-9), 1),
            )
    extra = (
        f"engine path: {engine} (REPRO_ENGINE); "
        "best of 3, cold homomorphism memo per measurement."
    )
    save_table("perf_chase", table, extra)

"""Tests for nice tree decompositions and hypertree-width upper bounds."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kbs import elevator as el
from repro.kbs import staircase as sc
from repro.kbs.generators import grid_instance, path_instance
from repro.logic.atoms import Atom, Predicate
from repro.logic.atomset import AtomSet
from repro.logic.parser import parse_atoms
from repro.logic.terms import Variable
from repro.treewidth import (
    bag_cover_number,
    decomposition_from_order,
    gaifman_graph,
    hypertree_width_upper_bound,
    make_nice,
    min_fill_order,
)
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.nice import NiceNode, NiceTreeDecomposition


def _nice_of(atoms: AtomSet) -> tuple:
    graph = gaifman_graph(atoms)
    decomposition = decomposition_from_order(graph, min_fill_order(graph))
    return graph, decomposition, make_nice(decomposition)


class TestNiceDecomposition:
    @pytest.mark.parametrize(
        "atoms_factory",
        [
            lambda: grid_instance(3),
            lambda: path_instance(6),
            lambda: sc.step(2),
            lambda: el.diagonal_model(3),
            lambda: parse_atoms("t(X, Y, Z)"),
        ],
    )
    def test_nice_shape_and_validity(self, atoms_factory):
        atoms = atoms_factory()
        graph, decomposition, nice = _nice_of(atoms)
        assert nice.validate_shape()
        assert nice.to_tree_decomposition().validate_for_graph(graph)
        assert nice.width == decomposition.width

    def test_root_bag_empty(self):
        _, _, nice = _nice_of(path_instance(3))
        assert nice.nodes[nice.root].bag == frozenset()

    def test_leaves_empty(self):
        _, _, nice = _nice_of(grid_instance(2))
        for node in nice.nodes:
            if node.kind == "leaf":
                assert node.bag == frozenset()

    def test_forest_input(self):
        atoms = parse_atoms("e(A, B), e(C, D)")
        graph, decomposition, nice = _nice_of(atoms)
        assert nice.validate_shape()
        assert nice.to_tree_decomposition().validate_for_graph(graph)

    def test_empty_decomposition(self):
        nice = make_nice(TreeDecomposition([]))
        assert nice.width <= 0
        assert nice.validate_shape()

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            NiceNode("magic", frozenset())

    def test_shape_validator_catches_bad_join(self):
        leaf1 = NiceNode("leaf", frozenset())
        leaf2 = NiceNode("leaf", frozenset())
        bad_join = NiceNode("join", frozenset({"x"}), [0, 1])
        nice = NiceTreeDecomposition([leaf1, leaf2, bad_join], 2)
        assert not nice.validate_shape()


class TestBagCover:
    def test_empty_bag(self):
        assert bag_cover_number(frozenset(), parse_atoms("p(X)")) == 0

    def test_single_atom_covers_its_terms(self):
        atoms = parse_atoms("t(X, Y, Z)")
        bag = frozenset(atoms.terms())
        assert bag_cover_number(bag, atoms) == 1

    def test_two_binary_atoms_needed(self):
        atoms = parse_atoms("e(X, Y), e(Y, Z)")
        bag = frozenset(atoms.terms())
        assert bag_cover_number(bag, atoms) == 2

    def test_missing_term_rejected(self):
        with pytest.raises(ValueError):
            bag_cover_number(frozenset({Variable("Nowhere")}), parse_atoms("p(X)"))

    def test_greedy_fallback_still_covers(self):
        atoms = grid_instance(4)
        bag = frozenset(list(atoms.terms())[:6])
        exact_ish = bag_cover_number(bag, atoms, exact_limit=0)
        assert exact_ish >= 1


class TestHypertreeWidth:
    def test_paper_section5_remark(self):
        """Grid-based structures have growing ghw; the paper's
        treewidth-1 models have ghw 1."""
        assert hypertree_width_upper_bound(el.diagonal_model(5)) == 1
        assert hypertree_width_upper_bound(sc.infinite_column_model(5)) == 1
        assert hypertree_width_upper_bound(grid_instance(2)) >= 2
        assert hypertree_width_upper_bound(grid_instance(3)) >= 3

    def test_wide_atoms_cover_cheaply(self):
        # one ternary atom covers a whole bag: ghw bound 1 despite tw 2
        atoms = parse_atoms("t(X, Y, Z)")
        assert hypertree_width_upper_bound(atoms) == 1

    def test_empty_atomset(self):
        assert hypertree_width_upper_bound(AtomSet()) == 0

    def test_supplied_decomposition_used(self):
        atoms = parse_atoms("e(X, Y), e(Y, Z)")
        terms = {t.name: t for t in atoms.terms()}
        decomposition = TreeDecomposition(
            [[terms["X"], terms["Y"], terms["Z"]]], []
        )
        assert hypertree_width_upper_bound(atoms, decomposition) == 2


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.builds(
            lambda args: Atom(Predicate("e", 2), tuple(args)),
            st.lists(
                st.sampled_from([Variable(f"N{i}") for i in range(5)]),
                min_size=2,
                max_size=2,
            ),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_nice_normalization_preserves_width_and_validity(atom_list):
    atoms = AtomSet(atom_list)
    graph = gaifman_graph(atoms)
    decomposition = decomposition_from_order(graph, min_fill_order(graph))
    nice = make_nice(decomposition)
    assert nice.validate_shape()
    assert nice.width == decomposition.width
    assert nice.to_tree_decomposition().validate_for_graph(graph)

"""Replay a JSONL trace into summary series and tables.

This is the offline half of the telemetry layer: a chase run traced with
``--trace run.jsonl`` can be turned back into the per-step retraction
series of Section 7 (``repro stats run.jsonl``) without re-running
anything.  The benchmark harness and future perf PRs consume
:func:`summarize_trace` directly.

(Kept out of ``repro.obs.__init__`` because it imports
:mod:`repro.util`, which sits above the logic layer the observer hooks
live in.)
"""

from __future__ import annotations

from typing import Iterable

from ..util.reporting import Table
from .spans import latency_summary, percentile as _percentile, trace_ids
from .tracer import EVENT_KINDS

__all__ = ["summarize_trace", "retraction_series", "render_summary"]


def retraction_series(events: Iterable[dict]) -> list[dict]:
    """The per-step series of a traced chase run.

    One record per ``chase_step_finished`` event: ``step``, ``rule``,
    ``atoms_applied`` (``|A_i|``), ``atoms`` (``|F_i|``) and
    ``retracted`` (``|A_i| - |F_i|``) — the series Figure 4/Section 7
    reports for the inflating elevator.
    """
    series = []
    for event in events:
        if event.get("kind") != "chase_step_finished":
            continue
        series.append(
            {
                "step": event["step"],
                "rule": event.get("rule"),
                "atoms_applied": event["atoms_applied"],
                "atoms": event["atoms_after"],
                "retracted": event["retracted"],
            }
        )
    return series


def summarize_trace(events: Iterable[dict]) -> dict:
    """Aggregate a trace into a plain-dict summary.

    Returns a dict with ``counts`` (events per kind), ``traces``
    (distinct trace ids seen), ``chase`` (step totals plus the per-step
    ``series``), per-subsystem totals for ``core``, ``core_maintenance``
    (skip-hit ratio, candidates tried per step), ``homomorphism``,
    ``treewidth`` and ``robust``, and a ``service`` section whose
    headline ``latency_p50/p95/p99`` cover **successful jobs only**
    (failed/retried jobs get ``failed_latency_*`` rows of their own)
    with a per-op ``latency`` breakdown from
    :func:`repro.obs.spans.latency_summary`.
    """
    events = list(events)
    counts = {kind: 0 for kind in EVENT_KINDS}
    for event in events:
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    counts = {kind: n for kind, n in counts.items() if n}

    series = retraction_series(events)
    chase = {
        "steps": len(series),
        "retractions": sum(1 for row in series if row["retracted"] > 0),
        "atoms_retracted": sum(
            row["retracted"] for row in series if row["retracted"] > 0
        ),
        "final_atoms": series[-1]["atoms"] if series else None,
        "series": series,
    }

    core_events = [e for e in events if e.get("kind") == "core_retraction"]
    core = {
        "calls": len(core_events),
        "proper": sum(
            1 for e in core_events if e["atoms_after"] < e["atoms_before"]
        ),
        "atoms_folded": sum(
            e["atoms_before"] - e["atoms_after"] for e in core_events
        ),
        "variables_folded": sum(e["variables_folded"] for e in core_events),
        "seconds": sum(e.get("seconds", 0.0) for e in core_events),
    }

    maint_events = [e for e in events if e.get("kind") == "core_maintenance"]
    maint_candidates = sum(e["candidates_tried"] for e in maint_events)
    maint_skips = sum(e["skip_hits"] for e in maint_events)
    considered = maint_candidates + maint_skips
    core_maintenance = {
        "calls": len(maint_events),
        "incremental": sum(
            1 for e in maint_events if e.get("mode") == "incremental"
        ),
        "candidates_tried": maint_candidates,
        "skip_hits": maint_skips,
        "skip_hit_ratio": (maint_skips / considered) if considered else None,
        "candidates_per_step": (
            maint_candidates / len(maint_events) if maint_events else None
        ),
        "seeded_searches": sum(e["seeded_searches"] for e in maint_events),
        "pairs_checked": sum(e["pairs_checked"] for e in maint_events),
        "cert_invalidated": sum(e["cert_invalidated"] for e in maint_events),
        "clean_broken": sum(1 for e in maint_events if e["clean_broken"]),
        "seconds": sum(e.get("seconds", 0.0) for e in maint_events),
    }

    hom_events = [e for e in events if e.get("kind") == "homomorphism_search"]
    homomorphism = {
        "searches": len(hom_events),
        "found": sum(1 for e in hom_events if e["found"]),
        "backtracks": sum(e["backtracks"] for e in hom_events),
        "seconds": sum(e.get("seconds", 0.0) for e in hom_events),
    }

    tw_events = [e for e in events if e.get("kind") == "treewidth_search"]
    treewidth = {
        "searches": len(tw_events),
        "budget_consumed": sum(e["budget_consumed"] for e in tw_events),
        "exhausted": sum(1 for e in tw_events if e["verdict"] is None),
    }

    robust_events = [e for e in events if e.get("kind") == "robust_step"]
    robust = {
        "steps": len(robust_events),
        "renamed": sum(e["renamed"] for e in robust_events),
    }

    plan_events = [e for e in events if e.get("kind") == "planner_decision"]
    plan_computed = sum(1 for e in plan_events if e.get("cached") == "computed")
    plan_hits = len(plan_events) - plan_computed
    strategies: dict[str, int] = {}
    for e in plan_events:
        name = e.get("strategy", "?")
        strategies[name] = strategies.get(name, 0) + 1
    planner = {
        "decisions": len(plan_events),
        "computed": plan_computed,
        "cache_hits": plan_hits,
        "cache_hit_ratio": (
            plan_hits / len(plan_events) if plan_events else None
        ),
        "strategies": strategies,
    }

    rewrite_events = [e for e in events if e.get("kind") == "query_rewrite"]
    rewrite_computed = sum(
        1 for e in rewrite_events if e.get("source") == "computed"
    )
    rewrite_hits = len(rewrite_events) - rewrite_computed
    query = {
        "plan_lookups": len(rewrite_events),
        "computed": rewrite_computed,
        "plan_cache_hits": rewrite_hits,
        "plan_cache_hit_ratio": (
            rewrite_hits / len(rewrite_events) if rewrite_events else None
        ),
        "rewrites": sum(
            1
            for e in rewrite_events
            if e.get("source") == "computed" and e.get("fragment")
        ),
        "disjuncts_pruned": sum(
            e.get("pruned", 0)
            for e in rewrite_events
            if e.get("source") == "computed"
        ),
        "fallbacks": sum(
            1
            for e in rewrite_events
            if e.get("fragment") and not e.get("complete")
        ),
    }

    request_events = [e for e in events if e.get("kind") == "service_request"]
    job_events = [e for e in events if e.get("kind") == "service_job"]
    retry_events = [e for e in events if e.get("kind") == "service_retry"]
    rebuild_events = [
        e for e in events if e.get("kind") == "service_pool_rebuild"
    ]
    snap_events = [e for e in events if e.get("kind") == "snapshot_access"]
    # Failed/retried jobs carry retry-inflated latencies (backoff and a
    # re-run included); folding them into the headline percentiles would
    # poison the SLO, so the aggregation splits on ``ok`` and surfaces
    # the failed side as its own rows.
    ok_latencies = sorted(
        e.get("seconds", 0.0) for e in job_events if e.get("ok")
    )
    failed_latencies = sorted(
        e.get("seconds", 0.0) for e in job_events if not e.get("ok")
    )
    warm_hits = sum(1 for e in job_events if e.get("warm"))
    snap_loads = [e for e in snap_events if e.get("op") == "load"]
    service = {
        "requests": len(request_events),
        "coalesced": sum(1 for e in request_events if e.get("coalesced")),
        "jobs": len(job_events),
        "ok": sum(1 for e in job_events if e.get("ok")),
        "warm_hits": warm_hits,
        "warm_hit_ratio": (warm_hits / len(job_events)) if job_events else None,
        "incomplete": sum(1 for e in job_events if e.get("incomplete")),
        "deadline_expired": sum(
            1 for e in job_events if e.get("deadline_expired")
        ),
        "applications": sum(e.get("applications", 0) for e in job_events),
        "seconds": sum(ok_latencies) + sum(failed_latencies),
        "latency_p50": _percentile(ok_latencies, 0.50),
        "latency_p95": _percentile(ok_latencies, 0.95),
        "latency_p99": _percentile(ok_latencies, 0.99),
        "failed_jobs": len(failed_latencies),
        "failed_latency_p50": _percentile(failed_latencies, 0.50),
        "failed_latency_p95": _percentile(failed_latencies, 0.95),
        "latency": latency_summary(
            (
                e.get("op", "?"),
                bool(e.get("warm")),
                bool(e.get("ok")),
                e.get("seconds", 0.0),
            )
            for e in job_events
        ),
        "retries": len(retry_events),
        "pool_rebuilds": len(rebuild_events),
        "snapshot_loads": len(snap_loads),
        "snapshot_load_hits": sum(1 for e in snap_loads if e.get("hit")),
        "snapshot_corrupt": sum(1 for e in snap_loads if e.get("corrupt")),
        "snapshot_saves": sum(
            1 for e in snap_events if e.get("op") == "save"
        ),
        "snapshot_evicted": sum(
            1 for e in snap_events if e.get("op") == "evict"
        ),
        "snapshot_ancestor_probes": sum(
            1 for e in snap_events if e.get("op") == "resolve"
        ),
        "snapshot_ancestor_hits": sum(
            1
            for e in snap_events
            if e.get("op") == "resolve" and e.get("hit")
        ),
        "snapshot_chain_broken": sum(
            1 for e in snap_events if e.get("chain_broken")
        ),
        "snapshot_bytes_saved": sum(
            e.get("bytes_saved", 0)
            for e in snap_events
            if e.get("op") == "save"
        ),
    }

    return {
        "events": len(events),
        "counts": counts,
        "traces": len(trace_ids(events)),
        "chase": chase,
        "core": core,
        "core_maintenance": core_maintenance,
        "homomorphism": homomorphism,
        "treewidth": treewidth,
        "robust": robust,
        "planner": planner,
        "query": query,
        "service": service,
    }


def render_summary(summary: dict, step_stride: int = 1) -> str:
    """Render a :func:`summarize_trace` summary as aligned text tables.

    *step_stride* thins the per-step table (stride 5 matches the
    hand-reported figures; the first and last steps always appear).
    """
    parts: list[str] = []

    counts = Table(["event", "count"], title="Trace events")
    for kind, n in sorted(summary["counts"].items()):
        counts.add_row(kind, n)
    counts.add_row("total", summary["events"])
    parts.append(counts.render())

    series = summary["chase"]["series"]
    if series:
        steps = Table(
            ["step", "rule", "atoms applied", "atoms", "retracted"],
            title="Chase steps (|A_i|, |F_i|, retraction size)",
        )
        last = len(series) - 1
        for index, row in enumerate(series):
            if index % step_stride and index != last:
                continue
            steps.add_row(
                row["step"],
                row["rule"] or "-",
                row["atoms_applied"],
                row["atoms"],
                row["retracted"],
            )
        parts.append(steps.render())

    totals = Table(["subsystem", "quantity", "value"], title="Totals")
    chase = summary["chase"]
    totals.add_row("chase", "applications", chase["steps"])
    totals.add_row("chase", "retractions", chase["retractions"])
    totals.add_row("chase", "atoms retracted", chase["atoms_retracted"])
    core = summary["core"]
    if core["calls"]:
        totals.add_row("core", "retraction calls", core["calls"])
        totals.add_row("core", "proper retractions", core["proper"])
        totals.add_row("core", "atoms folded", core["atoms_folded"])
        totals.add_row("core", "variables folded", core["variables_folded"])
    maint = summary.get("core_maintenance", {"calls": 0})
    if maint["calls"]:
        totals.add_row("core maintenance", "calls", maint["calls"])
        totals.add_row("core maintenance", "incremental", maint["incremental"])
        totals.add_row(
            "core maintenance", "candidates tried", maint["candidates_tried"]
        )
        totals.add_row("core maintenance", "skip hits", maint["skip_hits"])
        if maint["skip_hit_ratio"] is not None:
            totals.add_row(
                "core maintenance",
                "skip-hit ratio",
                round(maint["skip_hit_ratio"], 4),
            )
        if maint["candidates_per_step"] is not None:
            totals.add_row(
                "core maintenance",
                "candidates per step",
                round(maint["candidates_per_step"], 2),
            )
        totals.add_row(
            "core maintenance", "pairs checked", maint["pairs_checked"]
        )
        totals.add_row(
            "core maintenance", "certs invalidated", maint["cert_invalidated"]
        )
    hom = summary["homomorphism"]
    if hom["searches"]:
        totals.add_row("homomorphism", "searches", hom["searches"])
        totals.add_row("homomorphism", "found", hom["found"])
        totals.add_row("homomorphism", "backtracks", hom["backtracks"])
        totals.add_row("homomorphism", "seconds", round(hom["seconds"], 4))
    tw = summary["treewidth"]
    if tw["searches"]:
        totals.add_row("treewidth", "searches", tw["searches"])
        totals.add_row("treewidth", "budget consumed", tw["budget_consumed"])
        totals.add_row("treewidth", "budget exhaustions", tw["exhausted"])
    robust = summary["robust"]
    if robust["steps"]:
        totals.add_row("robust", "steps", robust["steps"])
        totals.add_row("robust", "variables renamed", robust["renamed"])
    planner = summary.get("planner", {"decisions": 0})
    if planner["decisions"]:
        totals.add_row("planner", "decisions", planner["decisions"])
        totals.add_row("planner", "verdicts computed", planner["computed"])
        totals.add_row("planner", "cache hits", planner["cache_hits"])
        if planner["cache_hit_ratio"] is not None:
            totals.add_row(
                "planner",
                "cache-hit ratio",
                round(planner["cache_hit_ratio"], 4),
            )
        for name, n in sorted(planner["strategies"].items()):
            totals.add_row("planner", f"strategy {name}", n)
    query = summary.get("query", {"plan_lookups": 0})
    if query["plan_lookups"]:
        totals.add_row("query", "plan lookups", query["plan_lookups"])
        totals.add_row("query", "rewrites computed", query["rewrites"])
        totals.add_row("query", "plan-cache hits", query["plan_cache_hits"])
        if query["plan_cache_hit_ratio"] is not None:
            totals.add_row(
                "query",
                "plan-cache hit ratio",
                round(query["plan_cache_hit_ratio"], 4),
            )
        totals.add_row("query", "disjuncts pruned", query["disjuncts_pruned"])
        totals.add_row("query", "race fallbacks", query["fallbacks"])
    service = summary.get("service", {"jobs": 0, "requests": 0})
    if service["jobs"] or service["requests"]:
        totals.add_row("service", "requests", service["requests"])
        totals.add_row("service", "coalesced", service["coalesced"])
        totals.add_row("service", "jobs", service["jobs"])
        totals.add_row("service", "ok", service["ok"])
        totals.add_row("service", "warm hits", service["warm_hits"])
        if service["warm_hit_ratio"] is not None:
            totals.add_row(
                "service",
                "warm-hit ratio",
                round(service["warm_hit_ratio"], 4),
            )
        totals.add_row("service", "incomplete", service["incomplete"])
        totals.add_row(
            "service", "deadline expired", service["deadline_expired"]
        )
        if service.get("retries"):
            totals.add_row("service", "retries", service["retries"])
        if service.get("pool_rebuilds"):
            totals.add_row(
                "service", "pool rebuilds", service["pool_rebuilds"]
            )
        totals.add_row("service", "applications", service["applications"])
        totals.add_row(
            "service", "latency p50 (s)", round(service["latency_p50"], 6)
        )
        totals.add_row(
            "service", "latency p95 (s)", round(service["latency_p95"], 6)
        )
        totals.add_row(
            "service", "latency p99 (s)", round(service.get("latency_p99", 0.0), 6)
        )
        if service.get("failed_jobs"):
            totals.add_row("service", "failed jobs", service["failed_jobs"])
            totals.add_row(
                "service",
                "failed latency p50 (s)",
                round(service["failed_latency_p50"], 6),
            )
            totals.add_row(
                "service",
                "failed latency p95 (s)",
                round(service["failed_latency_p95"], 6),
            )
        if service["snapshot_loads"] or service["snapshot_saves"]:
            totals.add_row(
                "service", "snapshot loads", service["snapshot_loads"]
            )
            totals.add_row(
                "service", "snapshot load hits", service["snapshot_load_hits"]
            )
            totals.add_row(
                "service", "snapshot saves", service["snapshot_saves"]
            )
            if service["snapshot_corrupt"]:
                totals.add_row(
                    "service",
                    "snapshots discarded corrupt",
                    service["snapshot_corrupt"],
                )
        if service.get("snapshot_evicted"):
            totals.add_row(
                "service",
                "snapshots evicted (LRU)",
                service["snapshot_evicted"],
            )
        if service.get("snapshot_ancestor_probes"):
            totals.add_row(
                "service",
                "ancestor probes",
                service["snapshot_ancestor_probes"],
            )
            totals.add_row(
                "service",
                "ancestor hits",
                service["snapshot_ancestor_hits"],
            )
        if service.get("snapshot_chain_broken"):
            totals.add_row(
                "service",
                "snapshot chains broken",
                service["snapshot_chain_broken"],
            )
        if service.get("snapshot_bytes_saved"):
            totals.add_row(
                "service",
                "snapshot bytes saved (delta vs full)",
                service["snapshot_bytes_saved"],
            )
    parts.append(totals.render())

    per_op = service.get("latency") or {}
    if any(per_op.values()):
        latency = Table(
            ["op", "class", "count", "mean", "p50", "p95", "p99"],
            title="Service latency by op (seconds)",
        )
        for op in sorted(per_op):
            for label in ("ok", "warm", "cold", "failed"):
                block = per_op[op].get(label)
                if block is None:
                    continue
                latency.add_row(
                    op,
                    label,
                    block["count"],
                    round(block["mean"], 6),
                    round(block["p50"], 6),
                    round(block["p95"], 6),
                    round(block["p99"], 6),
                )
        parts.append(latency.render())

    return "\n".join(parts)

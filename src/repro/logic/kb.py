"""Knowledge bases.

A knowledge base is a pair ``K = (F, Σ)`` of a finite instance and a
finite rule set (Section 2).  The class is a thin immutable pairing plus
the modelhood predicates the experiments keep re-checking: whether a
given instance is a model of ``F``, of the rules, and of the KB.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from .atoms import Atom
from .atomset import AtomSet
from .homomorphism import maps_into
from .rules import ExistentialRule, RuleSet

__all__ = ["KnowledgeBase"]


class KnowledgeBase:
    """An immutable pair of facts and rules."""

    __slots__ = ("facts", "rules", "name")

    def __init__(
        self,
        facts: Union[AtomSet, Iterable[Atom]],
        rules: Union[RuleSet, Iterable[ExistentialRule]],
        name: Optional[str] = None,
    ):
        facts_set = facts if isinstance(facts, AtomSet) else AtomSet(facts)
        rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
        if not facts_set:
            raise ValueError("a knowledge base needs a nonempty fact set")
        object.__setattr__(self, "facts", facts_set.copy())
        object.__setattr__(self, "rules", rule_set)
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("KnowledgeBase is immutable")

    # ------------------------------------------------------------------
    # modelhood (Section 2)
    # ------------------------------------------------------------------

    def rule_violations(self, instance: AtomSet):
        """Iterate over unsatisfied triggers ``(rule, π)`` of *instance*.

        An instance is a model of a rule iff it satisfies every trigger
        for it; this generator yields the counterexamples.
        """
        from ..chase.trigger import triggers  # local import to avoid a cycle

        for rule in self.rules:
            for trigger in triggers(rule, instance):
                if not trigger.is_satisfied_in(instance):
                    yield (rule, trigger.mapping)

    def is_model_of_rules(self, instance: AtomSet) -> bool:
        """True iff *instance* satisfies every rule of the KB."""
        for _ in self.rule_violations(instance):
            return False
        return True

    def is_model(self, instance: AtomSet) -> bool:
        """True iff *instance* is a model of the KB: the facts map into it
        and it satisfies every rule."""
        return maps_into(self.facts, instance) and self.is_model_of_rules(instance)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"KnowledgeBase({label} {len(self.facts)} facts, "
            f"{len(self.rules)} rules)"
        )

    def __str__(self) -> str:
        lines = [f"facts: {self.facts}"]
        lines.extend(f"{rule.name}: {rule}" for rule in self.rules)
        return "\n".join(lines)

"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.kbs.generators import grid_instance
from repro.kbs.witnesses import manager_kb, transitive_closure_kb
from repro.logic.serialization import dump_instance, save_kb
from repro.obs import get_observer
from repro.obs.tracer import read_trace


@pytest.fixture()
def kb_file(tmp_path):
    path = tmp_path / "tc.repro"
    save_kb(transitive_closure_kb(3), path)
    return str(path)


@pytest.fixture()
def manager_file(tmp_path):
    path = tmp_path / "mgr.repro"
    save_kb(manager_kb(), path)
    return str(path)


class TestChaseCommand:
    def test_terminating_run(self, kb_file, capsys):
        code = main(["chase", kb_file, "--variant", "core", "--steps", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "terminated" in out
        assert "e(v0, v3)" in out

    def test_quiet_mode(self, kb_file, capsys):
        main(["chase", kb_file, "--quiet"])
        out = capsys.readouterr().out
        assert "e(v0, v3)" not in out
        assert out.startswith("#")

    def test_budget_exhaustion_reported(self, manager_file, capsys):
        main(["chase", manager_file, "--steps", "5"])
        assert "budget-exhausted" in capsys.readouterr().out

    def test_variant_validated(self, kb_file):
        with pytest.raises(SystemExit):
            main(["chase", kb_file, "--variant", "turbo"])

    def test_summary_reports_retractions(self, kb_file, capsys):
        main(["chase", kb_file, "--variant", "core", "--quiet"])
        out = capsys.readouterr().out
        assert "retractions" in out
        assert "atoms retracted" in out

    def test_json_summary(self, kb_file, capsys):
        code = main(["chase", kb_file, "--variant", "core", "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["variant"] == "core"
        assert summary["terminated"] is True
        assert summary["applications"] >= 1
        assert summary["retractions"] >= 0
        assert summary["atoms_retracted"] >= 0
        assert "e(v0, v3)" in summary["instance"]

    def test_json_quiet_omits_instance(self, kb_file, capsys):
        main(["chase", kb_file, "--json", "--quiet"])
        summary = json.loads(capsys.readouterr().out)
        assert "instance" not in summary

    def test_trace_writes_jsonl(self, kb_file, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        code = main(
            [
                "chase",
                kb_file,
                "--variant",
                "core",
                "--quiet",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        events = read_trace(str(trace_path))
        kinds = {event["kind"] for event in events}
        assert "chase_step_finished" in kinds
        assert "core_retraction" in kinds
        # the observer must not leak past the command
        assert get_observer() is None

    def test_metrics_table_printed(self, kb_file, capsys):
        main(["chase", kb_file, "--variant", "core", "--quiet", "--metrics"])
        out = capsys.readouterr().out
        assert "# metrics" in out
        assert "chase.steps" in out
        assert "hom.searches" in out


class TestEntailCommand:
    def test_entailed_returns_zero(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(ann, X)"])
        assert code == 0
        assert "ENTAILED" in capsys.readouterr().out

    def test_not_entailed_returns_one(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(X, ann)"])
        assert code == 1
        assert "NOT ENTAILED" in capsys.readouterr().out

    def test_undecided_returns_two(self, tmp_path, capsys):
        # force undecidedness with starvation budgets on a KB whose
        # countermodels are out of reach for a 1-element domain
        from repro.kbs.staircase import staircase_kb

        path = tmp_path / "kh.repro"
        save_kb(staircase_kb(), path)
        code = main(
            [
                "entail",
                str(path),
                "f(X), c(X)",
                "--chase-budget",
                "1",
                "--model-budget",
                "1",
            ]
        )
        assert code == 2
        assert "UNDECIDED" in capsys.readouterr().out


class TestClassifyCommand:
    def test_reports_all_criteria(self, kb_file, capsys):
        code = main(["classify", kb_file])
        out = capsys.readouterr().out
        assert code == 0
        for needle in ("weakly acyclic", "guarded", "rule-acyclic", "fes"):
            assert needle in out

    def test_fes_certificate_shown(self, kb_file, capsys):
        main(["classify", kb_file])
        assert "core chase terminated" in capsys.readouterr().out


class TestTreewidthCommand:
    def test_grid_width(self, tmp_path, capsys):
        path = tmp_path / "grid.atoms"
        path.write_text(dump_instance(grid_instance(3)))
        code = main(["treewidth", str(path)])
        assert code == 0
        assert "treewidth: 3" in capsys.readouterr().out


class TestEntailClassifyJson:
    def test_entail_json_verdict(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(ann, X)", "--json"])
        verdict = json.loads(capsys.readouterr().out)
        assert code == 0
        assert verdict["entailed"] is True
        assert verdict["method"]

    def test_entail_json_exit_codes(self, manager_file, capsys):
        code = main(["entail", manager_file, "mgr(X, ann)", "--json"])
        verdict = json.loads(capsys.readouterr().out)
        assert code == 1
        assert verdict["entailed"] is False

    def test_classify_json_report(self, kb_file, capsys):
        code = main(["classify", kb_file, "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["weakly_acyclic"] is True
        assert report["fes_applications"] is not None


class TestStatsCommand:
    @pytest.fixture()
    def trace_file(self, kb_file, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(
            ["chase", kb_file, "--variant", "core", "--quiet", "--trace", str(path)]
        )
        capsys.readouterr()  # drop the chase output
        return str(path)

    def test_tables_rendered(self, trace_file, capsys):
        code = main(["stats", trace_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "Trace events" in out
        assert "Totals" in out
        assert "core_retraction" in out

    def test_json_summary(self, trace_file, capsys):
        code = main(["stats", trace_file, "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["core"]["calls"] == summary["chase"]["steps"] + 1
        assert summary["chase"]["series"], "per-step series must be present"

    def test_core_maintenance_aggregated(self, trace_file, capsys):
        """``repro stats`` folds the maintainer's per-call telemetry into
        skip-hit ratio and candidates-per-step aggregates."""
        code = main(["stats", trace_file, "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        maint = summary["core_maintenance"]
        assert maint["calls"] == summary["core"]["calls"]
        assert maint["calls"] > 0
        assert maint["incremental"] >= 1
        assert maint["candidates_tried"] >= 0
        assert maint["skip_hits"] >= 0
        if maint["skip_hit_ratio"] is not None:
            assert 0.0 <= maint["skip_hit_ratio"] <= 1.0
        assert maint["candidates_per_step"] >= 0

        code = main(["stats", trace_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "core maintenance" in out
        assert "skip hits" in out
        assert "candidates tried" in out

    def test_no_core_maint_trace_has_no_maintenance_events(
        self, kb_file, tmp_path, capsys
    ):
        """With ``--no-core-maint`` the run falls back to from-scratch
        retraction: no maintenance events, zero aggregates."""
        path = tmp_path / "naive.jsonl"
        main(
            [
                "chase",
                kb_file,
                "--variant",
                "core",
                "--quiet",
                "--no-core-maint",
                "--trace",
                str(path),
            ]
        )
        capsys.readouterr()
        kinds = {event["kind"] for event in read_trace(str(path))}
        assert "core_retraction" in kinds
        assert "core_maintenance" not in kinds
        code = main(["stats", str(path), "--json"])
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["core_maintenance"]["calls"] == 0


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert "chase" in parser.format_help()

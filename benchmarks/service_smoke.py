"""End-to-end smoke test for ``repro serve`` (the CI ``service-smoke`` job).

Boots the server as a real subprocess, replays the committed request
script (``service_smoke_requests.jsonl``) twice — phase 1 cold, phase 2
against the snapshots phase 1 saved — over concurrent connections, and
asserts:

* every request in both phases gets an ``ok`` response with its id echoed;
* phase 1 coalesces the identical in-flight entailments (dedup);
* phase 2 repeats warm-start, and the server-side warm-hit ratio meets
  the floor (``--min-warm-ratio``, default 0.3);
* the ``shutdown`` op stops the server cleanly (exit code 0).

Archives ``results/service_smoke.json`` in the same schema as the bench
tables so the CI artifact checks apply unchanged.

Run from the repository root::

    python benchmarks/service_smoke.py
"""

import argparse
import asyncio
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

HERE = pathlib.Path(__file__).parent
REPO_ROOT = HERE.parent
REQUESTS_FILE = HERE / "service_smoke_requests.jsonl"
RESULTS_FILE = HERE / "results" / "service_smoke.json"

#: Matches benchmarks/conftest.py — the artifact checks key off it.
RESULTS_SCHEMA = 1


def load_requests():
    lines = []
    for raw in REQUESTS_FILE.read_text().splitlines():
        raw = raw.strip()
        if raw:
            lines.append(json.loads(raw))
    if not lines:
        raise SystemExit(f"{REQUESTS_FILE}: no request lines")
    return lines


def start_server(snapshot_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--snapshot-dir",
            str(snapshot_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 60
    banner = ""
    while time.monotonic() < deadline:
        banner = process.stdout.readline()
        if "listening on" in banner:
            port = int(banner.rsplit(":", 1)[1])
            return process, port
        if process.poll() is not None:
            break
    process.kill()
    raise SystemExit(f"server did not come up (last output: {banner!r})")


async def send_on_connection(port, lines, phase):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for line in lines:
            tagged = dict(line)
            tagged["id"] = f"{phase}:{line['id']}"
            writer.write((json.dumps(tagged) + "\n").encode())
        await writer.drain()
        return [json.loads(await reader.readline()) for _ in lines]
    finally:
        writer.close()
        await writer.wait_closed()


async def replay_phase(port, requests, phase, connections=4):
    """Spread the script round-robin over *connections* concurrent
    connections so requests genuinely overlap."""
    buckets = [requests[i::connections] for i in range(connections)]
    batches = await asyncio.gather(
        *(send_on_connection(port, bucket, phase) for bucket in buckets if bucket)
    )
    responses = [response for batch in batches for response in batch]
    expected = {f"{phase}:{line['id']}" for line in requests}
    got = {response.get("id") for response in responses}
    assert got == expected, f"phase {phase}: id mismatch {expected ^ got}"
    bad = [r for r in responses if not r.get("ok")]
    assert not bad, f"phase {phase}: {len(bad)} failed responses: {bad[:2]}"
    return responses


async def fetch_stats(port):
    return (
        await send_on_connection(port, [{"op": "stats", "id": "stats"}], "final")
    )[0]


async def request_shutdown(port):
    response = (
        await send_on_connection(port, [{"op": "shutdown", "id": "bye"}], "final")
    )[0]
    assert response.get("ok"), f"shutdown refused: {response}"


def save_results(rows, extra):
    RESULTS_FILE.parent.mkdir(exist_ok=True)
    headers = list(rows[0])
    payload = {
        "schema": RESULTS_SCHEMA,
        "name": "service_smoke",
        "title": "service smoke: live replay of the committed request script",
        "headers": headers,
        "rows": rows,
        "extra": extra,
    }
    RESULTS_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_FILE}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-warm-ratio",
        type=float,
        default=0.3,
        help="minimum acceptable server-side warm-hit ratio (default 0.3)",
    )
    args = parser.parse_args()

    requests = load_requests()
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-snap-") as scratch:
        process, port = start_server(scratch)
        try:
            for phase in ("cold", "warm"):
                started = time.perf_counter()
                responses = asyncio.run(replay_phase(port, requests, phase))
                seconds = time.perf_counter() - started
                coalesced = sum(1 for r in responses if r.get("coalesced"))
                warm = sum(1 for r in responses if r.get("warm"))
                rows.append(
                    {
                        "phase": phase,
                        "requests": len(responses),
                        "coalesced": coalesced,
                        "warm": warm,
                        "seconds": round(seconds, 4),
                    }
                )
                print(
                    f"phase {phase}: {len(responses)} ok, "
                    f"{coalesced} coalesced, {warm} warm, {seconds:.3f}s"
                )

            stats = asyncio.run(fetch_stats(port))
            ratio = stats.get("warm_hit_ratio", 0.0)
            print(
                f"server stats: {stats['requests']} requests, "
                f"{stats['jobs']} jobs, {stats['warm_hits']} warm hits "
                f"(ratio {ratio:.2f}), {stats['coalesced']} coalesced, "
                f"{stats['errors']} errors"
            )
            assert stats["errors"] == 0, "server reported job errors"
            assert rows[0]["coalesced"] > 0, "phase 1 never coalesced"
            assert rows[1]["warm"] > 0, "phase 2 never warm-started"
            assert ratio >= args.min_warm_ratio, (
                f"warm-hit ratio {ratio:.2f} below floor {args.min_warm_ratio}"
            )

            asyncio.run(request_shutdown(port))
            code = process.wait(timeout=30)
            assert code == 0, f"server exited with {code}"
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    save_results(
        rows,
        f"warm-hit ratio {ratio:.2f} (floor {args.min_warm_ratio}); "
        "replayed over 4 concurrent connections, 2 spawn workers.",
    )
    print("service smoke OK")


if __name__ == "__main__":
    main()

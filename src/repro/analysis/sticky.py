"""Stickiness — the join-based decidable class of Calì, Gottlob & Pieris.

Alongside the guardedness family (see :mod:`repro.analysis.guardedness`)
the other major syntactic route to decidable CQ entailment is
*stickiness*, which restricts how join variables propagate.  It is
orthogonal to the treewidth story of the paper (sticky sets generally do
**not** have treewidth-bounded models) and is included to round out the
class-landscape tooling.

The marking procedure:

1. **Initial step** — for every rule, mark each body variable that does
   not occur in the rule's head.
2. **Propagation** — while changes occur: if a marked variable occurs at
   body position ``p`` of some rule, then for every rule whose *head*
   contains a universal (frontier) variable at position ``p``, mark all
   body occurrences of that variable.

A rule set is **sticky** iff no marked variable occurs more than once in
the body of its rule.
"""

from __future__ import annotations

from ..logic.rules import RuleSet
from ..logic.terms import Variable
from .positions import Position, variable_positions

__all__ = ["sticky_marking", "is_sticky"]

MarkKey = tuple[int, Variable]  # (rule index, variable)


def sticky_marking(rules: RuleSet) -> set[MarkKey]:
    """Compute the sticky marking: the set of (rule index, variable)
    pairs whose body occurrences are marked."""
    rule_list = list(rules)
    marked: set[MarkKey] = set()
    # initial step
    for index, rule in enumerate(rule_list):
        head_variables = rule.head.variables()
        for var in rule.body.variables():
            if var not in head_variables:
                marked.add((index, var))

    def marked_body_positions() -> set[Position]:
        positions: set[Position] = set()
        for index, var in marked:
            positions.update(variable_positions(rule_list[index].body, var))
        return positions

    changed = True
    while changed:
        changed = False
        dangerous = marked_body_positions()
        for index, rule in enumerate(rule_list):
            for var in rule.frontier:
                if (index, var) in marked:
                    continue
                head_positions = set(variable_positions(rule.head, var))
                if head_positions & dangerous:
                    marked.add((index, var))
                    changed = True
    return marked


def is_sticky(rules: RuleSet) -> bool:
    """True iff the rule set is sticky: no marked variable occurs more
    than once in its rule's body."""
    rule_list = list(rules)
    marking = sticky_marking(rules)
    for index, var in marking:
        occurrences = sum(
            1
            for at in rule_list[index].body
            for term in at.args
            if term == var
        )
        if occurrences > 1:
            return False
    return True

"""E3 — Proposition 4: the core chase of K_h is uniformly
treewidth-bounded by 2.

Prints the per-step (size, treewidth) series of the core chase and
asserts the paper's headline bound: **every** step has treewidth ≤ 2.
Also re-verifies the structural engine of the proof: each step S^h_k
retracts to the core column C^h_{k+1}, and steps have treewidth exactly 2.
"""

from repro import core_chase, is_core, treewidth
from repro.kbs import staircase as sc
from repro.logic.cores import retracts_to
from repro.util import Table

from conftest import save_table


def bench_fig2_staircase_core(benchmark, staircase_core_run):
    result = benchmark.pedantic(
        lambda: core_chase(sc.staircase_kb(), max_steps=20),
        rounds=1,
        iterations=1,
    )
    long_run = staircase_core_run

    table = Table(
        ["step", "atoms", "treewidth"],
        title="Prop. 4 — core chase of K_h: uniform treewidth bound 2",
    )
    widths = []
    for step in long_run.derivation:
        width = treewidth(step.instance)
        widths.append(width)
        if step.index % 5 == 0:
            table.add_row(step.index, len(step.instance), width)

    assert max(widths) <= 2, "Proposition 4 violated"
    assert not long_run.terminated
    for k in (0, 1, 2):
        assert retracts_to(sc.step(k), sc.column(k + 1)) is not None
        assert is_core(sc.column(k + 1))
        assert treewidth(sc.step(k + 1)) == 2
    assert max(treewidth(s.instance) for s in result.derivation) <= 2

    extra = (
        f"uniform bound over {len(widths)} steps: {max(widths)} (paper: 2).\n"
        "engine of the proof re-verified: S^h_k retracts to the core C^h_(k+1);\n"
        "steps have treewidth exactly 2."
    )
    save_table("fig2_staircase_core", table, extra)

"""A content-addressed delta store of resumable chase checkpoints.

The serving system's warm-start path: after answering a job the worker
exports the engine's :class:`~repro.chase.engine.ChaseState` and files
it here; the next job over the same KB (and chase configuration)
restores it and resumes instead of re-chasing from the facts.  Because
:meth:`~repro.chase.engine.ChaseEngine.restore_state` continues the
derivation *exactly*, answers computed from a snapshot are
indistinguishable from cold ones (the differential suites in
``tests/test_service_snapshots.py`` and ``tests/test_snapshot_delta.py``
check this on every KB family).

Keys and invalidation
---------------------
A snapshot is valid only for the precise KB it was exported under, so
the key bakes in everything that shapes the derivation:

``key = sha256(schema | variant | core_every | kb_fingerprint)``

where :func:`kb_fingerprint` hashes the canonical text of the facts
(sorted atoms) and rules.  Editing a fact or a rule changes the
fingerprint, which changes the key — stale snapshots are never *read*.
A schema-version bump orphans older snapshots the same way (schema-1
full-blob files are additionally *migrated* in place, see below).

Storage format (schema 2)
-------------------------
Two pieces under the store root:

``catalog.sqlite``
    The index: one ``snapshots`` row per key (fingerprints, chain head,
    sizes, a **monotonic access counter** for LRU) and one ``records``
    row per stored object.  Startup no longer stats the directory — the
    catalog is the directory — and eviction is a transaction, so a
    crash can orphan at most blob *files* (cleaned opportunistically),
    never catalog state.

``objects/<sha256>.json``
    Content-addressed records.  A ``base`` record carries a full
    serialized state; a ``delta`` record carries a
    :class:`~repro.chase.engine.ChaseStateDelta` against its ``parent``
    record.  A snapshot is the chain ``head → … → base`` replayed
    oldest-first.  Saves that resume a loaded snapshot append a delta
    (tiny: the atoms and bookkeeping that changed); chains re-checkpoint
    to a fresh base when they exceed :attr:`SnapshotStore.max_chain_depth`
    records or :data:`CHAIN_BYTES_FACTOR` times the full-state size.
    Records are verified against their name's hash on read; any broken
    link discards the whole entry (counted as ``snapshot.chain_broken``)
    and the job falls back to a cold chase.

Ancestor resolution
-------------------
Every schema-2 entry stores a *facts manifest*: the per-fact hashes of
the KB's sorted fact lines.  On an exact-key miss,
:meth:`SnapshotStore.resolve_ancestor` scans same-rules/same-config
entries whose manifest is a proper subset of the incoming KB's facts,
loads the nearest one (most shared facts, then deepest prefix), and
hands back the state plus the missing facts;
:func:`~repro.chase.engine.merge_facts_into_state` grafts them on and
the engine resumes incrementally.  Soundness gates (refusing shared or
colliding nulls) are documented on :meth:`~SnapshotStore.resolve_ancestor`.

Migration from schema 1
-----------------------
Schema-1 stores kept one full-blob JSON file per key at the store root.
Construction imports each such file as a ``base`` record under its
schema-2 key (the v1 payload carries the KB fingerprint and config) and
unlinks the file; corrupt v1 files are discarded.  Migrated entries
have no facts manifest, so they serve exact hits but are not ancestor
candidates until their next save refreshes them.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import sqlite3
import tempfile
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from ..chase.engine import (
    ChaseState,
    ChaseStateDelta,
    apply_chase_state_delta,
    diff_chase_states,
)
from ..logic.atomset import AtomSet
from ..logic.kb import KnowledgeBase
from ..logic.serialization import (
    atom_from_obj,
    atom_to_obj,
    dump_instance,
    dump_ruleset,
    instance_from_obj,
    instance_to_obj,
    term_from_obj,
    term_to_obj,
)
from ..obs import observer as _observer_state

__all__ = [
    "SNAPSHOT_SCHEMA",
    "TMP_ORPHAN_GRACE",
    "DEFAULT_MAX_CHAIN_DEPTH",
    "CHAIN_BYTES_FACTOR",
    "kb_fingerprint",
    "rules_fingerprint",
    "facts_manifest",
    "snapshot_key",
    "chase_state_to_obj",
    "chase_state_from_obj",
    "state_delta_to_obj",
    "state_delta_from_obj",
    "SnapshotEntry",
    "SnapshotStore",
]

#: Bump when the on-disk layout changes; old snapshots are then orphaned
#: (never mis-read) because the schema participates in the key.
#: Schema 1 (full-blob files) is special-cased: migrated, not orphaned.
SNAPSHOT_SCHEMA = 2

#: Chains longer than this re-checkpoint to a fresh base record on the
#: next save (overridable per store).  Bounds both load-time replay work
#: and the blast radius of a corrupt mid-chain record.
DEFAULT_MAX_CHAIN_DEPTH = 8

#: A chain also re-checkpoints when its accumulated record bytes would
#: exceed this multiple of the full-state size — past that, replaying
#: deltas stops being cheaper than reading a fresh base.
CHAIN_BYTES_FACTOR = 2.0

PathLike = Union[str, pathlib.Path]


def kb_fingerprint(kb: KnowledgeBase) -> str:
    """A canonical content hash of *kb* (facts + rules, order-free).

    The fingerprint is over the deterministic text serialization —
    sorted atoms, rules in declaration order — so two KBs with the same
    facts and rules hash identically however they were constructed.
    The KB's display ``name`` deliberately does not participate.
    """
    text = dump_instance(kb.facts) + "\n" + dump_ruleset(kb.rules)
    return hashlib.sha256(text.encode()).hexdigest()


def rules_fingerprint(kb: KnowledgeBase) -> str:
    """Hash of the rules alone — the part ancestor candidates must share
    exactly (a fact delta can be injected, a rule delta cannot)."""
    return hashlib.sha256(dump_ruleset(kb.rules).encode()).hexdigest()


def facts_manifest(kb: KnowledgeBase) -> list:
    """Per-fact content hashes of *kb*'s sorted fact lines.

    The manifest makes subset probing cheap: KB A's facts are a subset
    of KB B's iff A's manifest is a subset of B's (the line is the
    canonical atom text, so equal lines are equal atoms).  16 hex chars
    (64 bits) per fact keeps manifests compact in the catalog.
    """
    return [
        hashlib.sha256(str(atom).encode()).hexdigest()[:16]
        for atom in kb.facts.sorted_atoms()
    ]


def snapshot_key(kb: KnowledgeBase, variant: str, core_every: int = 1) -> str:
    """The store key for chasing *kb* with *variant* / *core_every*."""
    tag = f"{SNAPSHOT_SCHEMA}|{variant}|{core_every}|{kb_fingerprint(kb)}"
    return hashlib.sha256(tag.encode()).hexdigest()


def _v2_key(variant, core_every, kb_fp: str) -> str:
    tag = f"{SNAPSHOT_SCHEMA}|{variant}|{core_every}|{kb_fp}"
    return hashlib.sha256(tag.encode()).hexdigest()


# ---------------------------------------------------------------------------
# ChaseState / ChaseStateDelta <-> JSON objects
# ---------------------------------------------------------------------------


def _trigger_key_to_obj(key) -> list:
    rule_name, image = key
    return [rule_name, [[var.name, term_to_obj(term)] for var, term in image]]


def _trigger_key_from_obj(obj):
    from ..logic.terms import Variable

    rule_name, image = obj
    return (
        rule_name,
        tuple((Variable(name), term_from_obj(term)) for name, term in image),
    )


def chase_state_to_obj(state: ChaseState) -> dict:
    """Serialize a :class:`ChaseState` as a JSON-ready dict.

    Trigger keys (``applied_keys`` entries and ``ages`` keys) are
    ``(rule_name, ((Variable, Term), ...))`` tuples; they serialize
    through the tagged term objects and are emitted in sorted order so
    the output is deterministic."""
    applied = sorted(map(_trigger_key_to_obj, state.applied_keys))
    ages = sorted(
        [_trigger_key_to_obj(key), age] for key, age in state.ages.items()
    )
    return {
        "variant": state.variant,
        "core_every": state.core_every,
        "fresh_prefix": state.fresh_prefix,
        "fresh_count": state.fresh_count,
        "instance": instance_to_obj(state.instance),
        "applied_keys": applied,
        "ages": ages,
        "terminated": state.terminated,
        "applications": state.applications,
        "applications_since_core": state.applications_since_core,
        "delta_since_core": [atom_to_obj(at) for at in state.delta_since_core],
    }


def chase_state_from_obj(obj: dict) -> ChaseState:
    """Parse a state serialized by :func:`chase_state_to_obj`."""
    return ChaseState(
        variant=obj["variant"],
        core_every=obj["core_every"],
        fresh_prefix=obj["fresh_prefix"],
        fresh_count=obj["fresh_count"],
        instance=instance_from_obj(obj["instance"]),
        applied_keys={
            _trigger_key_from_obj(item) for item in obj["applied_keys"]
        },
        ages={
            _trigger_key_from_obj(key): age for key, age in obj["ages"]
        },
        terminated=obj["terminated"],
        applications=obj["applications"],
        applications_since_core=obj["applications_since_core"],
        delta_since_core=[
            atom_from_obj(item) for item in obj["delta_since_core"]
        ],
    )


def state_delta_to_obj(delta: ChaseStateDelta) -> dict:
    """Serialize a :class:`ChaseStateDelta`; collections are emitted in
    sorted order so equal deltas produce byte-equal (hence
    content-address-equal) records."""
    return {
        "fresh_count": delta.fresh_count,
        "terminated": delta.terminated,
        "applications": delta.applications,
        "applications_since_core": delta.applications_since_core,
        "added_atoms": [atom_to_obj(at) for at in delta.added_atoms],
        "removed_atoms": [atom_to_obj(at) for at in delta.removed_atoms],
        "added_applied_keys": sorted(
            map(_trigger_key_to_obj, delta.added_applied_keys)
        ),
        "removed_applied_keys": sorted(
            map(_trigger_key_to_obj, delta.removed_applied_keys)
        ),
        "ages_set": sorted(
            [_trigger_key_to_obj(key), age] for key, age in delta.ages_set
        ),
        "ages_removed": sorted(
            map(_trigger_key_to_obj, delta.ages_removed)
        ),
        "delta_since_core": [
            atom_to_obj(at) for at in delta.delta_since_core
        ],
    }


def state_delta_from_obj(obj: dict) -> ChaseStateDelta:
    """Parse a delta serialized by :func:`state_delta_to_obj`."""
    return ChaseStateDelta(
        fresh_count=obj["fresh_count"],
        terminated=obj["terminated"],
        applications=obj["applications"],
        applications_since_core=obj["applications_since_core"],
        added_atoms=[atom_from_obj(item) for item in obj["added_atoms"]],
        removed_atoms=[atom_from_obj(item) for item in obj["removed_atoms"]],
        added_applied_keys=[
            _trigger_key_from_obj(item) for item in obj["added_applied_keys"]
        ],
        removed_applied_keys=[
            _trigger_key_from_obj(item)
            for item in obj["removed_applied_keys"]
        ],
        ages_set=[
            (_trigger_key_from_obj(key), age) for key, age in obj["ages_set"]
        ],
        ages_removed=[
            _trigger_key_from_obj(item) for item in obj["ages_removed"]
        ],
        delta_since_core=[
            atom_from_obj(item) for item in obj["delta_since_core"]
        ],
    )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


#: A ``.tmp`` file older than this (seconds) at store construction is an
#: orphan from a crashed writer, never a live write in progress, and is
#: garbage-collected.  Young ``.tmp`` files are left alone — a sibling
#: worker may be mid-save.
TMP_ORPHAN_GRACE = 300.0

_CATALOG_NAME = "catalog.sqlite"
_OBJECTS_DIR = "objects"

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    hash TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    parent TEXT,
    bytes INTEGER NOT NULL,
    full_bytes INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshots (
    key TEXT PRIMARY KEY,
    kb_fingerprint TEXT NOT NULL,
    rules_fingerprint TEXT,
    variant TEXT NOT NULL,
    core_every INTEGER NOT NULL,
    head TEXT NOT NULL,
    applications INTEGER NOT NULL,
    atoms INTEGER NOT NULL,
    terminated INTEGER NOT NULL,
    chain_depth INTEGER NOT NULL,
    chain_bytes INTEGER NOT NULL,
    fact_count INTEGER,
    facts_manifest TEXT,
    last_access INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS snapshots_ancestry
    ON snapshots (rules_fingerprint, variant, core_every, fact_count);
CREATE TABLE IF NOT EXISTS verdicts (
    rules_fingerprint TEXT PRIMARY KEY,
    verdict TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS query_plans (
    rules_fingerprint TEXT NOT NULL,
    query_shape TEXT NOT NULL,
    plan TEXT NOT NULL,
    created REAL NOT NULL,
    PRIMARY KEY (rules_fingerprint, query_shape)
);
"""


@dataclass
class SnapshotEntry:
    """A loaded snapshot plus the catalog context a resumed save needs.

    ``state`` is the pristine checkpoint as stored (callers must not
    mutate it — :meth:`~repro.chase.engine.ChaseEngine.restore_state`
    copies, and :func:`~repro.chase.engine.merge_facts_into_state`
    returns a new state).  Passing the entry back to
    :meth:`SnapshotStore.save` as ``parent`` lets the store append a
    delta record to this entry's chain instead of writing a full base.

    For ancestor hits (:meth:`SnapshotStore.resolve_ancestor`),
    ``ancestor`` is True and ``missing_atoms`` holds the incoming KB's
    facts absent from the ancestor — the delta to inject before
    resuming.
    """

    state: ChaseState
    key: str
    head: str
    chain_depth: int
    chain_bytes: int
    missing_atoms: list = field(default_factory=list)
    ancestor: bool = False


class _ChainBroken(Exception):
    """A chain record is missing, corrupt, or hash-mismatched."""


class SnapshotStore:
    """Content-addressed snapshot store: sqlite catalog + record blobs.

    Safe for concurrent use by multiple worker processes: the catalog
    serializes index updates (each operation is one transaction with a
    generous busy timeout), record blobs are immutable once written
    (temp file + :func:`os.replace`), and loads treat anything
    unreadable as a miss — a broken chain is dropped transactionally
    and the caller falls back to a cold chase.

    Hygiene (the store must survive crashing writers and run forever):

    * construction garbage-collects orphaned ``.tmp`` files — the
      droppings of workers killed mid-save — once they are older than
      *tmp_grace_seconds* — and migrates any schema-1 full-blob
      snapshots into the catalog;
    * *max_entries* / *max_bytes* bound the store; past either bound,
      saves evict the least-recently-used snapshot — recency is the
      catalog's **monotonic access counter**, bumped inside the same
      transaction as the load or save it records, so eviction order is
      exact even on filesystems with coarse mtimes.  Each eviction
      deletes the catalog row and then any chain records no surviving
      entry reaches (chains may share suffixes, so eviction works at
      record granularity without orphaning members); it is reported via
      the ``snapshot_access`` telemetry event (``op="evict"``, the
      ``snapshot.evicted`` metric).  The just-written snapshot is never
      evicted, even when it alone exceeds *max_bytes* — such saves are
      counted in :attr:`eviction_shortfalls` instead.
    """

    def __init__(
        self,
        root: PathLike,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        tmp_grace_seconds: float = TMP_ORPHAN_GRACE,
        max_chain_depth: int = DEFAULT_MAX_CHAIN_DEPTH,
        ancestor_resume: bool = True,
    ):
        self.root = pathlib.Path(root)
        self.objects = self.root / _OBJECTS_DIR
        self.objects.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.max_chain_depth = max(1, int(max_chain_depth))
        self.ancestor_resume = ancestor_resume
        #: saves after which a bound could not be met because eviction
        #: never removes the most-recently-written snapshot
        self.eviction_shortfalls = 0
        #: schema-1 files imported (or discarded as corrupt) at startup
        self.migrated = 0
        self._catalog = self.root / _CATALOG_NAME
        with self._db() as conn:
            conn.executescript(_SCHEMA_SQL)
            conn.execute(
                "INSERT OR IGNORE INTO meta (k, v) VALUES ('tick', 0)"
            )
        self._gc_orphan_tmp_files(tmp_grace_seconds)
        self._migrate_v1()

    # -- catalog plumbing ---------------------------------------------

    @contextlib.contextmanager
    def _db(self) -> Iterator[sqlite3.Connection]:
        """One short-lived autocommit connection per operation — the
        simplest arrangement that is safe across both threads and the
        executor's spawned worker processes."""
        conn = sqlite3.connect(self._catalog, timeout=30.0)
        conn.isolation_level = None  # explicit BEGIN/COMMIT below
        try:
            conn.execute("PRAGMA busy_timeout = 30000")
            yield conn
            conn.commit()
        finally:
            conn.close()

    @staticmethod
    def _tick(conn: sqlite3.Connection) -> int:
        """Advance and return the monotonic access counter; must be
        called inside an open transaction."""
        conn.execute("UPDATE meta SET v = v + 1 WHERE k = 'tick'")
        return conn.execute(
            "SELECT v FROM meta WHERE k = 'tick'"
        ).fetchone()[0]

    def _object_path(self, record_hash: str) -> pathlib.Path:
        return self.objects / f"{record_hash}.json"

    def path_for(self, key: str) -> pathlib.Path:
        """The blob holding *key*'s chain head (for cataloged keys), or
        the legacy schema-1 location otherwise."""
        with self._db() as conn:
            row = conn.execute(
                "SELECT head FROM snapshots WHERE key = ?", (key,)
            ).fetchone()
        if row is not None:
            return self._object_path(row[0])
        return self.root / f"{key}.json"

    def entry_count(self) -> int:
        with self._db() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM snapshots"
            ).fetchone()[0]

    def total_bytes(self) -> int:
        """Bytes held in record blobs (the catalog file is overhead,
        not content, and does not count against *max_bytes*)."""
        with self._db() as conn:
            return conn.execute(
                "SELECT COALESCE(SUM(bytes), 0) FROM records"
            ).fetchone()[0]

    # -- hygiene -------------------------------------------------------

    def _gc_orphan_tmp_files(self, grace_seconds: float) -> int:
        """Unlink crashed writers' temp files older than the grace
        period; returns how many were collected."""
        cutoff = time.time() - grace_seconds
        collected = 0
        for directory in (self.root, self.objects):
            for path in directory.glob("*.tmp"):
                try:
                    if path.stat().st_mtime <= cutoff:
                        path.unlink()
                        collected += 1
                except OSError:
                    continue  # a racing GC or the writer finishing; fine
        return collected

    def _migrate_v1(self) -> int:
        """Import schema-1 full-blob files into the catalog.

        Each becomes a ``base`` record under its schema-2 key (the v1
        payload carries the fingerprint and config).  The original KB
        text is not recoverable from a v1 payload, so migrated entries
        get no facts manifest — exact hits work immediately, ancestor
        candidacy returns with the entry's next save.  Unparseable v1
        files are discarded.  Returns how many files were consumed.
        """
        consumed = 0
        for path in self.root.glob("*.json"):
            try:
                payload = json.loads(path.read_text())
                if (
                    not isinstance(payload, dict)
                    or payload.get("schema") != 1
                ):
                    raise ValueError("not a schema-1 snapshot")
                state_obj = payload["state"]
                kb_fp = payload["kb_fingerprint"]
                key = _v2_key(
                    state_obj["variant"], state_obj["core_every"], kb_fp
                )
                blob = _dump_record(
                    {"schema": SNAPSHOT_SCHEMA, "kind": "base",
                     "state": state_obj}
                )
                record_hash = hashlib.sha256(blob).hexdigest()
                self._write_blob(record_hash, blob)
                with self._db() as conn:
                    conn.execute("BEGIN IMMEDIATE")
                    conn.execute(
                        "INSERT OR IGNORE INTO records "
                        "(hash, kind, parent, bytes, full_bytes) "
                        "VALUES (?, 'base', NULL, ?, ?)",
                        (record_hash, len(blob), len(blob)),
                    )
                    tick = self._tick(conn)
                    conn.execute(
                        "INSERT OR REPLACE INTO snapshots (key, "
                        "kb_fingerprint, rules_fingerprint, variant, "
                        "core_every, head, applications, atoms, "
                        "terminated, chain_depth, chain_bytes, "
                        "fact_count, facts_manifest, last_access) "
                        "VALUES (?, ?, NULL, ?, ?, ?, ?, ?, ?, 1, ?, "
                        "NULL, NULL, ?)",
                        (
                            key,
                            kb_fp,
                            state_obj["variant"],
                            state_obj["core_every"],
                            record_hash,
                            int(state_obj.get("applications", 0)),
                            len(state_obj.get("instance", [])),
                            1 if state_obj.get("terminated") else 0,
                            len(blob),
                            tick,
                        ),
                    )
                    conn.execute("COMMIT")
            except Exception:  # noqa: BLE001 - hostile files must not wedge startup
                pass
            try:
                path.unlink()
            except OSError:
                pass
            consumed += 1
        self.migrated += consumed
        return consumed

    # -- record blobs --------------------------------------------------

    def _write_blob(self, record_hash: str, blob: bytes) -> pathlib.Path:
        """Write a content-addressed record if absent (idempotent — the
        name is the hash, so a racing writer produced identical bytes)."""
        path = self._object_path(record_hash)
        if path.exists():
            return path
        handle = tempfile.NamedTemporaryFile(
            mode="wb",
            dir=self.objects,
            prefix=f".{record_hash[:16]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def _read_record(self, record_hash: str) -> dict:
        """Read and verify one record; raises :class:`_ChainBroken` on
        any damage (missing file, torn write, content/hash mismatch)."""
        try:
            blob = self._object_path(record_hash).read_bytes()
        except OSError as exc:
            raise _ChainBroken(f"record {record_hash[:12]} missing") from exc
        if hashlib.sha256(blob).hexdigest() != record_hash:
            raise _ChainBroken(f"record {record_hash[:12]} hash mismatch")
        try:
            payload = json.loads(blob)
        except ValueError as exc:
            raise _ChainBroken(f"record {record_hash[:12]} unparseable") from exc
        if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
            raise _ChainBroken(f"record {record_hash[:12]} schema mismatch")
        return payload

    def _load_chain(self, head: str) -> ChaseState:
        """Materialize the state at *head*: walk to the base, then
        replay the deltas oldest-first.  Raises :class:`_ChainBroken`
        on any damaged or malformed link."""
        chain = []
        record_hash: Optional[str] = head
        for _ in range(self.max_chain_depth + 1):
            payload = self._read_record(record_hash)
            chain.append(payload)
            if payload.get("kind") == "base":
                break
            if payload.get("kind") != "delta":
                raise _ChainBroken(f"record {record_hash[:12]} bad kind")
            record_hash = payload.get("parent")
            if not isinstance(record_hash, str):
                raise _ChainBroken("delta record without parent")
        else:
            raise _ChainBroken("chain exceeds depth bound (cycle?)")
        try:
            state = chase_state_from_obj(chain[-1]["state"])
            for payload in reversed(chain[:-1]):
                state = apply_chase_state_delta(
                    state, state_delta_from_obj(payload["delta"])
                )
        except _ChainBroken:
            raise
        except Exception as exc:  # noqa: BLE001 - adversarial payloads raise anything
            raise _ChainBroken(f"chain decode failed: {exc}") from exc
        return state

    def _drop_entry(self, key: str) -> None:
        """Transactionally forget *key* and any records only it reached;
        blob files are unlinked after the commit."""
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute("DELETE FROM snapshots WHERE key = ?", (key,))
            dead = self._gc_unreachable(conn)
            conn.execute("COMMIT")
        self._unlink_blobs(dead)

    @staticmethod
    def _gc_unreachable(conn: sqlite3.Connection) -> set:
        """Delete record rows no snapshot chain reaches; returns their
        hashes.  Must run inside an open transaction."""
        parent_of = dict(
            conn.execute("SELECT hash, parent FROM records").fetchall()
        )
        live: set = set()
        for (head,) in conn.execute("SELECT head FROM snapshots"):
            record_hash = head
            while record_hash is not None and record_hash not in live:
                live.add(record_hash)
                record_hash = parent_of.get(record_hash)
        dead = set(parent_of) - live
        if dead:
            conn.executemany(
                "DELETE FROM records WHERE hash = ?",
                [(item,) for item in dead],
            )
        return dead

    def _unlink_blobs(self, hashes) -> None:
        for record_hash in hashes:
            try:
                self._object_path(record_hash).unlink()
            except OSError:
                pass  # racing GC, or the blob never hit disk

    def _evict_lru(self, protect_key: str) -> int:
        """Evict least-recently-used snapshots until within bounds.

        Called after every save; a no-op for unbounded stores.  Each
        round is one catalog transaction: pick the stalest entry (by
        access counter) other than *protect_key*, drop its row, GC the
        records only it reached.  Racing evictors are harmless — the
        transactions serialize.  Saves that leave the store over a
        bound because only the protected entry remains are counted in
        :attr:`eviction_shortfalls`."""
        if self.max_entries is None and self.max_bytes is None:
            return 0
        evicted = 0
        observer = _observer_state.current
        while True:
            with self._db() as conn:
                conn.execute("BEGIN IMMEDIATE")
                count = conn.execute(
                    "SELECT COUNT(*) FROM snapshots"
                ).fetchone()[0]
                total = conn.execute(
                    "SELECT COALESCE(SUM(bytes), 0) FROM records"
                ).fetchone()[0]
                over_entries = (
                    self.max_entries is not None and count > self.max_entries
                )
                over_bytes = (
                    self.max_bytes is not None and total > self.max_bytes
                )
                if not (over_entries or over_bytes):
                    conn.execute("COMMIT")
                    return evicted
                victim = conn.execute(
                    "SELECT key FROM snapshots WHERE key != ? "
                    "ORDER BY last_access ASC LIMIT 1",
                    (protect_key,),
                ).fetchone()
                if victim is None:
                    conn.execute("COMMIT")
                    self.eviction_shortfalls += 1
                    return evicted
                conn.execute(
                    "DELETE FROM snapshots WHERE key = ?", (victim[0],)
                )
                dead = self._gc_unreachable(conn)
                conn.execute("COMMIT")
            self._unlink_blobs(dead)
            evicted += 1
            if observer is not None:
                observer.snapshot_access(op="evict", hit=False)

    # -- save ----------------------------------------------------------

    def save(
        self,
        kb: KnowledgeBase,
        state: ChaseState,
        parent: Optional[SnapshotEntry] = None,
    ) -> pathlib.Path:
        """File *state* under the key for (*kb*, its chase config).

        With *parent* — the :class:`SnapshotEntry` this job resumed
        from — the save appends a compact delta record to the parent's
        chain instead of writing a full base, unless the chain budget
        (:attr:`max_chain_depth` records, :data:`CHAIN_BYTES_FACTOR`
        × full size bytes) says to re-checkpoint, the delta would not
        actually be smaller, or the parent record was evicted in the
        meantime.  Returns the path of the written head record.
        """
        started = time.perf_counter()
        key = snapshot_key(kb, state.variant, state.core_every)
        state_obj = chase_state_to_obj(state)
        base_blob = _dump_record(
            {"schema": SNAPSHOT_SCHEMA, "kind": "base", "state": state_obj}
        )
        full_bytes = len(base_blob)

        delta_blob = None
        if parent is not None and parent.chain_depth < self.max_chain_depth:
            try:
                delta = diff_chase_states(parent.state, state)
            except ValueError:
                delta = None  # config mismatch: never chain across configs
            if delta is not None:
                candidate = _dump_record(
                    {
                        "schema": SNAPSHOT_SCHEMA,
                        "kind": "delta",
                        "parent": parent.head,
                        "delta": state_delta_to_obj(delta),
                    }
                )
                within_budget = (
                    len(candidate) < full_bytes
                    and parent.chain_bytes + len(candidate)
                    <= CHAIN_BYTES_FACTOR * full_bytes
                )
                if within_budget:
                    delta_blob = candidate

        manifest = facts_manifest(kb)
        row_common = (
            kb_fingerprint(kb),
            rules_fingerprint(kb),
            state.variant,
            state.core_every,
            state.applications,
            len(state.instance),
            1 if state.terminated else 0,
            len(manifest),
            json.dumps(manifest),
        )

        def _commit(blob, kind, parent_hash, depth, chain_bytes):
            record_hash = hashlib.sha256(blob).hexdigest()
            self._write_blob(record_hash, blob)
            with self._db() as conn:
                conn.execute("BEGIN IMMEDIATE")
                if parent_hash is not None:
                    still_there = conn.execute(
                        "SELECT 1 FROM records WHERE hash = ?",
                        (parent_hash,),
                    ).fetchone()
                    if still_there is None:
                        conn.execute("ROLLBACK")
                        return None  # parent evicted under us
                conn.execute(
                    "INSERT OR IGNORE INTO records "
                    "(hash, kind, parent, bytes, full_bytes) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (record_hash, kind, parent_hash, len(blob), full_bytes),
                )
                tick = self._tick(conn)
                conn.execute(
                    "INSERT OR REPLACE INTO snapshots (key, "
                    "kb_fingerprint, rules_fingerprint, variant, "
                    "core_every, head, applications, atoms, terminated, "
                    "chain_depth, chain_bytes, fact_count, "
                    "facts_manifest, last_access) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (key, *row_common[:4], record_hash, *row_common[4:7],
                     depth, chain_bytes, *row_common[7:], tick),
                )
                conn.execute("COMMIT")
            return self._object_path(record_hash)

        path = None
        chain_depth = 1
        bytes_saved = 0
        if delta_blob is not None:
            path = _commit(
                delta_blob,
                "delta",
                parent.head,
                parent.chain_depth + 1,
                parent.chain_bytes + len(delta_blob),
            )
            if path is not None:
                chain_depth = parent.chain_depth + 1
                bytes_saved = full_bytes - len(delta_blob)
        if path is None:
            path = _commit(base_blob, "base", None, 1, full_bytes)
        self._evict_lru(protect_key=key)
        observer = _observer_state.current
        if observer is not None:
            observer.snapshot_access(
                op="save",
                hit=True,
                atoms=len(state.instance),
                seconds=time.perf_counter() - started,
                chain_depth=chain_depth,
                bytes_saved=bytes_saved,
            )
        return path

    # -- load ----------------------------------------------------------

    def load_entry(
        self, kb: KnowledgeBase, variant: str, core_every: int = 1
    ) -> Optional[SnapshotEntry]:
        """The stored entry for (*kb*, *variant*, *core_every*), or None.

        Misses, fingerprint/config mismatches, and damaged chains all
        come back as None; a damaged chain is dropped transactionally
        (``snapshot.chain_broken``) so it is paid for only once."""
        started = time.perf_counter()
        key = snapshot_key(kb, variant, core_every)
        with self._db() as conn:
            row = conn.execute(
                "SELECT head, chain_depth, chain_bytes, kb_fingerprint "
                "FROM snapshots WHERE key = ?",
                (key,),
            ).fetchone()
        entry: Optional[SnapshotEntry] = None
        corrupt = False
        if row is not None:
            head, chain_depth, chain_bytes, row_fp = row
            try:
                if row_fp != kb_fingerprint(kb):
                    raise _ChainBroken("catalog fingerprint mismatch")
                state = self._load_chain(head)
                if state.variant != variant or state.core_every != core_every:
                    raise _ChainBroken("snapshot config mismatch")
                entry = SnapshotEntry(
                    state=state,
                    key=key,
                    head=head,
                    chain_depth=chain_depth,
                    chain_bytes=chain_bytes,
                )
            except _ChainBroken:
                corrupt = True
                self._drop_entry(key)
        if entry is not None:
            with self._db() as conn:
                conn.execute("BEGIN IMMEDIATE")
                tick = self._tick(conn)
                conn.execute(
                    "UPDATE snapshots SET last_access = ? WHERE key = ?",
                    (tick, key),
                )
                conn.execute("COMMIT")
        observer = _observer_state.current
        if observer is not None:
            observer.snapshot_access(
                op="load",
                hit=entry is not None,
                corrupt=corrupt,
                atoms=len(entry.state.instance) if entry is not None else 0,
                seconds=time.perf_counter() - started,
                chain_depth=entry.chain_depth if entry is not None else 0,
                chain_broken=corrupt,
            )
        return entry

    def load(
        self, kb: KnowledgeBase, variant: str, core_every: int = 1
    ) -> Optional[ChaseState]:
        """The stored state for (*kb*, *variant*, *core_every*), or
        None — :meth:`load_entry` without the chain context."""
        entry = self.load_entry(kb, variant, core_every)
        return entry.state if entry is not None else None

    # -- analysis verdicts ---------------------------------------------

    def load_verdict(self, rules_fp: str) -> Optional[dict]:
        """The persisted analysis verdict for a ruleset fingerprint, or
        None.  Verdicts are pure functions of the rules (plus advisory
        instance probes), so the catalog shares them across workers and
        restarts; an unparseable row is treated as a miss."""
        with self._db() as conn:
            row = conn.execute(
                "SELECT verdict FROM verdicts WHERE rules_fingerprint = ?",
                (rules_fp,),
            ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def save_verdict(self, rules_fp: str, obj: dict) -> None:
        """Persist an analysis verdict keyed by ruleset fingerprint.
        Last writer wins; racing writers computed the same verdict, so
        the replace is harmless."""
        with self._db() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO verdicts "
                "(rules_fingerprint, verdict, created) VALUES (?, ?, ?)",
                (rules_fp, json.dumps(obj, sort_keys=True), time.time()),
            )

    # -- compiled query plans ------------------------------------------

    def load_query_plan(self, rules_fp: str, query_shape: str) -> Optional[dict]:
        """The persisted rewriting plan for a ``(ruleset fingerprint,
        canonical CQ shape)`` pair, or None.  Plans are pure functions of
        the two keys, so the catalog shares them across pool workers and
        restarts; an unparseable row is treated as a miss."""
        with self._db() as conn:
            row = conn.execute(
                "SELECT plan FROM query_plans "
                "WHERE rules_fingerprint = ? AND query_shape = ?",
                (rules_fp, query_shape),
            ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def save_query_plan(
        self, rules_fp: str, query_shape: str, obj: dict
    ) -> None:
        """Persist a rewriting plan.  Last writer wins; racing writers
        computed the same deterministic plan, so the replace is
        harmless."""
        with self._db() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO query_plans "
                "(rules_fingerprint, query_shape, plan, created) "
                "VALUES (?, ?, ?, ?)",
                (rules_fp, query_shape, json.dumps(obj, sort_keys=True), time.time()),
            )

    # -- ancestor resolution -------------------------------------------

    def resolve_ancestor(
        self,
        kb: KnowledgeBase,
        variant: str,
        core_every: int = 1,
        max_applications: Optional[int] = None,
    ) -> Optional[SnapshotEntry]:
        """On an exact miss: the nearest stored ancestor of *kb*, or None.

        An ancestor is an entry with the **same rules** (by fingerprint)
        and chase configuration whose facts are a *proper subset* of
        *kb*'s — probed via the facts manifests, so the scan is a
        catalog query plus set algebra, never a directory walk.
        Candidates are tried nearest-first (most shared facts, then
        deepest chase prefix); *max_applications* (the job's step
        budget) filters out prefixes too deep to resume under it.

        Soundness — the returned state plus ``missing_atoms`` must be a
        fair-derivation prefix of the *grown* KB, so a candidate is
        rejected when injecting the missing facts could conflate or
        decouple existentials:

        * the missing facts must share no nulls (variables) with the
          ancestor's facts — the ancestor's simplifications may have
          folded its copy of a shared null away, silently decoupling
          the two occurrences;
        * the missing facts' nulls must not collide with the loaded
          state's terms, nor use its fresh-null prefix — a collision
          would conflate an input existential with an invented one.

        Constants are rigid and never folded, so shared constants are
        fine — the common serving case (new ground facts about known
        entities) always qualifies.
        """
        if not self.ancestor_resume:
            return None
        started = time.perf_counter()
        incoming = {
            hashlib.sha256(str(atom).encode()).hexdigest()[:16]: atom
            for atom in kb.facts.sorted_atoms()
        }
        rules_fp = rules_fingerprint(kb)
        query = (
            "SELECT key, head, chain_depth, chain_bytes, facts_manifest "
            "FROM snapshots WHERE rules_fingerprint = ? AND variant = ? "
            "AND core_every = ? AND facts_manifest IS NOT NULL "
            "AND fact_count < ?"
        )
        params = [rules_fp, variant, core_every, len(incoming)]
        if max_applications is not None:
            query += " AND applications <= ?"
            params.append(max_applications)
        query += " ORDER BY fact_count DESC, applications DESC LIMIT 32"
        with self._db() as conn:
            candidates = conn.execute(query, params).fetchall()

        observer = _observer_state.current
        for key, head, chain_depth, chain_bytes, manifest_json in candidates:
            try:
                manifest = set(json.loads(manifest_json))
            except ValueError:
                continue
            if not manifest <= set(incoming):
                continue
            missing = [
                atom
                for line_hash, atom in incoming.items()
                if line_hash not in manifest
            ]
            ancestor_facts = AtomSet(
                atom
                for line_hash, atom in incoming.items()
                if line_hash in manifest
            )
            missing_vars = AtomSet(missing).variables()
            if missing_vars & ancestor_facts.variables():
                continue  # shared input nulls: folding may have decoupled them
            try:
                state = self._load_chain(head)
                if state.variant != variant or state.core_every != core_every:
                    raise _ChainBroken("snapshot config mismatch")
            except _ChainBroken:
                self._drop_entry(key)
                if observer is not None:
                    observer.snapshot_access(
                        op="load",
                        hit=False,
                        corrupt=True,
                        seconds=0.0,
                        chain_depth=0,
                        chain_broken=True,
                    )
                continue
            prefix = state.fresh_prefix
            if any(var.name.startswith(prefix) for var in missing_vars):
                continue  # could collide with invented nulls
            if missing_vars & state.instance.variables():
                continue
            with self._db() as conn:
                conn.execute("BEGIN IMMEDIATE")
                tick = self._tick(conn)
                conn.execute(
                    "UPDATE snapshots SET last_access = ? WHERE key = ?",
                    (tick, key),
                )
                conn.execute("COMMIT")
            if observer is not None:
                observer.snapshot_access(
                    op="resolve",
                    hit=True,
                    atoms=len(state.instance),
                    seconds=time.perf_counter() - started,
                    chain_depth=chain_depth,
                    ancestor=True,
                )
            return SnapshotEntry(
                state=state,
                key=key,
                head=head,
                chain_depth=chain_depth,
                chain_bytes=chain_bytes,
                missing_atoms=missing,
                ancestor=True,
            )
        if observer is not None:
            observer.snapshot_access(
                op="resolve",
                hit=False,
                seconds=time.perf_counter() - started,
            )
        return None


def _dump_record(payload: dict) -> bytes:
    """The canonical record serialization (hashed to form the address)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()

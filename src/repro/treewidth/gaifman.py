"""Gaifman (primal) graphs of atomsets.

The treewidth of an atomset (Definition 4) — minimum over tree
decompositions whose bags cover every atom's terms and satisfy the
connectedness condition per term — equals the treewidth of its *Gaifman
graph*: the graph on ``terms(A)`` with an edge between any two terms that
co-occur in an atom.  (Each atom's terms must share a bag, which is
exactly the clique-cover condition on the primal graph, and conversely a
primal-graph decomposition covers every atom because the atom's terms
form a clique.)
"""

from __future__ import annotations

from typing import Iterable, Union

from ..logic.atoms import Atom
from ..logic.atomset import AtomSet
from .graph import Graph

__all__ = ["gaifman_graph", "co_occurrence_pairs"]

AtomsLike = Union[AtomSet, Iterable[Atom]]


def gaifman_graph(atoms: AtomsLike) -> Graph:
    """The Gaifman graph of an atomset.

    Every term occurring in the atomset becomes a vertex (also terms of
    unary atoms, as isolated vertices if they co-occur with nothing), and
    the distinct terms of each atom are made pairwise adjacent.
    """
    graph = Graph()
    for at in atoms:
        terms = list(at.term_set())
        for term in terms:
            graph.add_vertex(term)
        graph.add_clique(terms)
    return graph


def co_occurrence_pairs(atoms: AtomsLike):
    """Iterate over the distinct unordered term pairs sharing an atom.

    Used by the grid-containment search (Definition 5 only requires
    co-occurrence in *some* atom, which is exactly Gaifman adjacency).
    """
    seen: set[frozenset] = set()
    for at in atoms:
        terms = list(at.term_set())
        for i, u in enumerate(terms):
            for v in terms[i + 1 :]:
                pair = frozenset((u, v))
                if pair not in seen:
                    seen.add(pair)
                    yield (u, v)

"""Monotonic-clock deadlines for cooperative cancellation.

The chase engine polls a ``should_stop`` callable between rule
applications (:meth:`repro.chase.engine.ChaseEngine.run`); a
:class:`Deadline` *is* such a callable, so the service layer's per-job
time budgets plug straight into the engine without signals or threads.
The clock is :func:`time.monotonic` — wall-clock adjustments never
shorten or extend a budget.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

__all__ = ["Deadline"]


class Deadline:
    """A point in monotonic time after which work should stop.

    ``Deadline(None)`` never expires, so callers can thread one through
    unconditionally instead of special-casing "no timeout".

    Parameters
    ----------
    seconds:
        Budget from *now*; ``None`` for no limit.  Zero or negative
        budgets are already expired (useful for tests).
    clock:
        The time source, injectable for tests; defaults to
        :func:`time.monotonic`.
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        if seconds is None:
            self._expires_at = math.inf
        else:
            self._expires_at = clock() + seconds

    def expired(self) -> bool:
        """True iff the budget is used up."""
        return self._clock() >= self._expires_at

    def remaining(self) -> float:
        """Seconds left (never negative; ``math.inf`` when unlimited)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def unlimited(self) -> bool:
        """True iff this deadline never expires."""
        return self._expires_at == math.inf

    def __call__(self) -> bool:
        """Alias for :meth:`expired` — the engine's ``should_stop``."""
        return self.expired()

    def __repr__(self) -> str:
        if self.unlimited:
            return "Deadline(unlimited)"
        return f"Deadline({self.remaining():.3f}s remaining)"

"""Tests for the fault-injection module (repro.service.faults).

The fuse mechanism is the foundation the chaos suite stands on, so its
own guarantees — one fire per fuse, atomic cross-consumer claims,
deterministic schedules — get direct coverage here.
"""

import json

import pytest

from repro.chase.engine import ChaseEngine
from repro.kbs.staircase import staircase_kb
from repro.service.faults import (
    FAULT_POINTS,
    FaultPlan,
    corrupt_latest_snapshot,
    fire_worker_faults,
    schedule_fires,
)
from repro.service.snapshots import SnapshotStore


class TestFaultPlan:
    def test_consume_unarmed_returns_none(self, tmp_path):
        plan = FaultPlan(tmp_path)
        for point in FAULT_POINTS:
            assert plan.consume(point) is None

    def test_each_fuse_fires_exactly_once(self, tmp_path):
        plan = FaultPlan(tmp_path)
        plan.arm("worker.kill_mid_job", times=2)
        assert plan.armed("worker.kill_mid_job") == 2
        assert plan.consume("worker.kill_mid_job") == {}
        assert plan.consume("worker.kill_mid_job") == {}
        assert plan.consume("worker.kill_mid_job") is None
        assert plan.armed("worker.kill_mid_job") == 0
        assert plan.fired("worker.kill_mid_job") == 2

    def test_payload_rides_along(self, tmp_path):
        plan = FaultPlan(tmp_path)
        plan.arm("worker.slow_job", payload={"seconds": 0.25})
        assert plan.consume("worker.slow_job") == {"seconds": 0.25}

    def test_points_are_independent(self, tmp_path):
        plan = FaultPlan(tmp_path)
        plan.arm("worker.kill_mid_job")
        assert plan.consume("server.drop_connection") is None
        assert plan.consume("worker.kill_mid_job") is not None

    def test_two_plan_objects_share_the_directory(self, tmp_path):
        # The cross-process story in miniature: arming through one
        # handle is visible to (and consumable by) another.
        FaultPlan(tmp_path).arm("worker.slow_job")
        other = FaultPlan(tmp_path)
        assert other.consume("worker.slow_job") is not None
        assert other.consume("worker.slow_job") is None

    def test_arm_after_fire_uses_fresh_sequence(self, tmp_path):
        plan = FaultPlan(tmp_path)
        plan.arm("worker.kill_mid_job")
        plan.consume("worker.kill_mid_job")
        plan.arm("worker.kill_mid_job")
        assert plan.armed("worker.kill_mid_job") == 1
        assert plan.fired("worker.kill_mid_job") == 1

    def test_unknown_point_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FaultPlan(tmp_path).arm("worker.meltdown")

    def test_bad_times_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FaultPlan(tmp_path).arm("worker.kill_mid_job", times=0)


class TestFireWorkerFaults:
    def test_noop_without_plan(self):
        fire_worker_faults(None, in_process=True)  # must not raise

    def test_in_process_kill_raises_oserror(self, tmp_path):
        plan = FaultPlan(tmp_path)
        plan.arm("worker.kill_mid_job")
        with pytest.raises(OSError):
            fire_worker_faults(plan, in_process=True)
        # the fuse is spent: the retried job runs clean
        fire_worker_faults(plan, in_process=True)

    def test_slow_job_consumes_fuse(self, tmp_path):
        plan = FaultPlan(tmp_path)
        plan.arm("worker.slow_job", payload={"seconds": 0.0})
        fire_worker_faults(plan, in_process=True)
        assert plan.fired("worker.slow_job") == 1


class TestCorruptLatestSnapshot:
    def _store_with_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        kb = staircase_kb()
        engine = ChaseEngine(kb, variant="restricted")
        engine.run(5)
        store.save(kb, engine.export_state())
        return store, kb

    @pytest.mark.parametrize("mode", ["garbage", "truncate", "adversarial"])
    def test_corrupted_snapshot_becomes_a_miss(self, tmp_path, mode):
        store, kb = self._store_with_snapshot(tmp_path)
        target = corrupt_latest_snapshot(tmp_path, mode=mode)
        assert target is not None
        assert store.load(kb, "restricted", 1) is None

    def test_adversarial_mode_keeps_valid_json_envelope(self, tmp_path):
        self._store_with_snapshot(tmp_path)
        target = corrupt_latest_snapshot(tmp_path, mode="adversarial")
        json.loads(target.read_text())  # parseable — corruption is deeper

    def test_empty_store_is_a_noop(self, tmp_path):
        assert corrupt_latest_snapshot(tmp_path) is None

    def test_unknown_mode_rejected(self, tmp_path):
        self._store_with_snapshot(tmp_path)
        with pytest.raises(ValueError):
            corrupt_latest_snapshot(tmp_path, mode="subtle")


class TestScheduleFires:
    def test_deterministic_for_a_seed(self):
        assert schedule_fires(7, 100, 0.2) == schedule_fires(7, 100, 0.2)

    def test_seeds_differ(self):
        schedules = {tuple(schedule_fires(seed, 200, 0.3)) for seed in range(8)}
        assert len(schedules) > 1

    def test_rate_bounds(self):
        assert schedule_fires(1, 50, 0.0) == []
        assert schedule_fires(1, 50, 1.0) == list(range(50))
        with pytest.raises(ValueError):
            schedule_fires(1, 50, 1.5)

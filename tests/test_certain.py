"""Tests for certain-answer computation (repro.query.certain)."""

import pytest

from repro.chase import core_chase, restricted_chase
from repro.kbs.witnesses import manager_kb, transitive_closure_kb
from repro.logic.terms import Constant, Variable
from repro.query import (
    ConjunctiveQuery,
    active_domain,
    boolean_cq,
    certain_answers,
    certain_answers_over,
)

X = Variable("X")


class TestActiveDomain:
    def test_fact_constants_collected(self):
        domain = active_domain(transitive_closure_kb(2))
        assert [c.name for c in domain] == ["v0", "v1", "v2"]

    def test_rule_constants_collected(self):
        from repro.logic.kb import KnowledgeBase
        from repro.logic.parser import parse_atoms, parse_rules

        kb = KnowledgeBase(
            parse_atoms("p(a)"), parse_rules("[R] p(X) -> e(X, special)")
        )
        assert Constant("special") in active_domain(kb)


class TestOverUniversalStructure:
    def test_reachability_answers(self):
        kb = transitive_closure_kb(3)
        run = core_chase(kb, max_steps=100)
        q = ConjunctiveQuery("e(X, v3)", answer_variables=[X])
        answers = set(certain_answers_over(q, run.final_instance))
        assert answers == {
            (Constant("v0"),),
            (Constant("v1"),),
            (Constant("v2"),),
        }

    def test_null_valued_answers_filtered(self):
        kb = manager_kb()
        run = restricted_chase(kb, max_steps=10)
        q = ConjunctiveQuery("mgr(X, Y)", answer_variables=[Variable("Y")])
        # all managers are nulls: no certain answer tuples
        assert list(certain_answers_over(q, run.final_instance)) == []

    def test_boolean_query_rejected(self):
        with pytest.raises(ValueError):
            list(certain_answers_over(boolean_cq("p(X)"), None))  # type: ignore[arg-type]


class TestDecidedCertainAnswers:
    def test_transitive_closure(self):
        kb = transitive_closure_kb(3)
        q = ConjunctiveQuery("e(X, v3)", answer_variables=[X])
        verdicts = certain_answers(kb, q, chase_budget=100)
        expected = {"v0": True, "v1": True, "v2": True, "v3": False}
        assert {k[0].name: v for k, v in verdicts.items()} == expected

    def test_non_terminating_kb(self):
        kb = manager_kb()
        q = ConjunctiveQuery("mgr(X, Y)", answer_variables=[X])
        verdicts = certain_answers(kb, q, chase_budget=20)
        # ann certainly manages someone; the manager Y itself is a null,
        # but X = ann is a certain answer to exists Y mgr(X, Y)
        assert verdicts[(Constant("ann"),)] is True

    def test_explicit_candidates(self):
        kb = transitive_closure_kb(2)
        q = ConjunctiveQuery("e(v0, X)", answer_variables=[X])
        verdicts = certain_answers(
            kb, q, candidates=[(Constant("v2"),)], chase_budget=50
        )
        assert verdicts == {(Constant("v2"),): True}

    def test_boolean_query_rejected(self):
        with pytest.raises(ValueError):
            certain_answers(transitive_closure_kb(2), boolean_cq("e(X, Y)"))

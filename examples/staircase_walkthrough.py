"""The steepening staircase, end to end (Sections 6 and 8 of the paper).

Run with::

    python examples/staircase_walkthrough.py

The walkthrough shows, executably, the paper's central negative result
and its positive workaround:

1. the core chase of ``K_h`` stays *uniformly treewidth-bounded by 2*
   (Proposition 4) — we print the per-step series;
2. the natural aggregation ``D*`` of that very chase regrows arbitrarily
   large grids, and in fact **no** universal model of ``K_h`` has finite
   treewidth (Proposition 5) — we exhibit the grid witnesses;
3. the **robust aggregation** ``D⊛`` (Section 8) instead converges to the
   infinite column ``Ĩ^h``: a model that is only *finitely* universal,
   but has treewidth 1 and decides exactly the entailed CQs.
"""

from repro import core_chase, isomorphic, treewidth
from repro.chase import RobustSequence
from repro.kbs import staircase as sc
from repro.treewidth import grid_from_coordinates
from repro.util import Table, banner, render_coordinates


def main() -> None:
    kb = sc.staircase_kb()
    print(banner("The steepening staircase K_h (Definition 7)"))
    print(kb)

    print(banner("The universal model I^h (Definition 8), first columns"))
    window = sc.universal_model_window(5)
    print(render_coordinates(window, sc.coordinates(window)))
    print(f"({len(window)} atoms on {len(window.terms())} nulls)")

    print(banner("Core chase: uniformly treewidth-bounded by 2 (Prop. 4)"))
    result = core_chase(kb, max_steps=45)
    table = Table(["step", "atoms", "treewidth"], title="core chase of K_h")
    widths = []
    for step in result.derivation:
        width = treewidth(step.instance)
        widths.append(width)
        if step.index % 5 == 0:
            table.add_row(step.index, len(step.instance), width)
    table.print()
    print(f"uniform bound over all {len(widths)} steps: {max(widths)}  (paper: 2)")

    print(banner("...but the natural aggregation D* regrows grids (Prop. 5)"))
    wide = sc.universal_model_window(9)
    coords = sc.coordinates(wide)
    for n in (2, 3, 4):
        found = grid_from_coordinates(wide, coords, n, origin=(n + 1, 0))
        print(f"I^h window contains a {n}x{n} grid: {found}  => tw >= {n} (Fact 2)")
    print("hence no universal model of K_h has finite treewidth.")

    print(banner("The robust aggregation D⊛ (Definitions 14-16)"))
    robust = RobustSequence(result.derivation)
    print("stabilization:", robust.stabilization_report())
    stable = robust.stable_part(patience=len(robust) // 2)
    print(f"stable part: {len(stable)} atoms, treewidth {treewidth(stable)}")
    for height in range(1, 10):
        if isomorphic(stable, sc.infinite_column_model(height)):
            print(
                f"stable part is ISOMORPHIC to the infinite-column model "
                f"Ĩ^h truncated at height {height} — exactly the paper's "
                f"Section 8 walkthrough."
            )
            break


if __name__ == "__main__":
    main()

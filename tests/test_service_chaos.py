"""Chaos suite: injected faults against a live server + process pool.

This is the acceptance test of the fault-tolerance layer: a pool worker
is killed *mid-service* (``os._exit`` from inside the worker, breaking
the ``ProcessPoolExecutor``), and the serving stack must carry on — the
pool rebuilt, the orphaned jobs retried and answered correctly (warm,
because the warm-up phase left a snapshot), and every request line
getting exactly one response.

The suite uses real ``spawn`` workers and real TCP connections, so it
is the slowest test module in the tree; everything deterministic about
the failure path (classification, backoff, budgets, fuse semantics) is
covered by the fast in-process tests in ``test_service_executor.py``.
"""

import asyncio
import json

from repro import staircase_kb
from repro.logic.serialization import dump_kb
from repro.obs import JsonlTracer, TracingObserver, observing
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import build_trace, read_trace_dir, trace_ids
from repro.service.executor import JobExecutor, RetryPolicy
from repro.service.faults import FaultPlan
from repro.service.server import EntailmentServer


def span_names(tree):
    """Every span name in *tree*, duplicates kept."""
    names = []
    stack = list(tree.roots)
    while stack:
        node = stack.pop()
        names.append(node.name)
        stack.extend(node.children)
    return names

STAIRCASE = dump_kb(staircase_kb())

#: Distinct queries (so they do not coalesce) that are all entailed.
QUERIES = [
    "v(X, Y)",
    "v(X, Y), v(Y, Z)",
    "f(X), v(X, Y)",
    "h(X, X)",
]


def entail_line(request_id, query):
    return {
        "op": "entail",
        "kb_text": STAIRCASE,
        "query": query,
        "max_steps": 60,
        "id": request_id,
    }


async def request_lines(port, lines):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for line in lines:
        writer.write((json.dumps(line) + "\n").encode())
    await writer.drain()
    responses = [json.loads(await reader.readline()) for _ in lines]
    writer.close()
    await writer.wait_closed()
    return responses


class TestWorkerKillRecovery:
    def test_server_survives_a_worker_killed_mid_job(self, tmp_path):
        plan = FaultPlan(tmp_path / "faults")
        registry = MetricsRegistry()
        trace_dir = tmp_path / "trace"
        executor = JobExecutor(
            2,
            snapshot_dir=tmp_path / "snaps",
            registry=registry,
            retry_policy=RetryPolicy(
                max_retries=3, base_delay=0.05, max_delay=0.5, seed=7
            ),
            fault_dir=plan.root,
            trace_dir=trace_dir,
        )
        sink = open(trace_dir / "server.jsonl", "w")
        observer = TracingObserver(JsonlTracer(sink), registry=registry)

        async def scenario():
            server = EntailmentServer(executor, port=0, fault_plan=plan)
            await server.start()
            task = asyncio.ensure_future(server.serve_until_stopped())

            # Phase 1 — warm-up: one clean job files the snapshot the
            # retried jobs will later resume from.
            warm_up = await request_lines(
                server.port, [entail_line("w0", QUERIES[0])]
            )

            # Phase 2 — arm the kill, then four concurrent requests on
            # separate connections.  Whichever worker picks the fuse up
            # dies and poisons the pool; every in-flight job fails at
            # the executor level and must be retried on the rebuilt pool.
            plan.arm("worker.kill_mid_job")
            batches = await asyncio.gather(
                *(
                    request_lines(
                        server.port, [entail_line(f"f{i}", QUERIES[i])]
                    )
                    for i in range(len(QUERIES))
                )
            )

            # Phase 3 — the service is healthy again for new arrivals.
            after = await request_lines(
                server.port, [entail_line("a0", QUERIES[1])]
            )
            stats = (
                await request_lines(server.port, [{"op": "stats", "id": "s"}])
            )[0]

            server.request_stop()
            await asyncio.wait_for(task, timeout=60)
            fault_responses = [batch[0] for batch in batches]
            return warm_up[0], fault_responses, after[0], stats

        try:
            with observing(observer):
                warm_up, fault_responses, after, stats = asyncio.run(scenario())
        finally:
            executor.shutdown()
            sink.close()

        # exactly one response per id, every answer correct
        assert warm_up["id"] == "w0" and warm_up["ok"]
        assert warm_up["entailed"] is True
        assert [r["id"] for r in fault_responses] == [
            f"f{i}" for i in range(len(QUERIES))
        ]
        assert all(r["ok"] for r in fault_responses)
        assert all(r["entailed"] is True for r in fault_responses)
        assert after["id"] == "a0" and after["ok"] and after["entailed"] is True

        # the kill actually happened, and the supervisor recovered
        assert plan.fired("worker.kill_mid_job") == 1
        assert executor.pool_rebuilds == 1
        assert executor.retries >= 1
        assert registry.counter("service.pool_rebuilds").value == 1
        assert registry.counter("service.retries").value == executor.retries

        # retried jobs resumed warm from the warm-up snapshot; the one
        # repeating the warm-up query maps into the restored instance
        # immediately, so its retry costs zero new rule applications
        assert all(r["warm"] for r in fault_responses)
        assert fault_responses[0]["applications"] == 0
        assert after["warm"]

        # nothing leaked: queue drained, no dangling in-flight entries
        assert executor.pending == 0
        assert registry.gauge("service.queue_depth").value == 0
        assert stats["pending"] == 0 and stats["inflight"] <= 1

        # the kill is visible in the merged trace as ONE causal
        # timeline: the retried request's trace holds the request span,
        # the failed attempt, the pool rebuild, the backoff, and the
        # successful attempt — no orphaned or unclosed spans anywhere.
        events, skipped = read_trace_dir(trace_dir)
        assert skipped == 0
        retried = None
        for trace_id in trace_ids(events):
            tree = build_trace(events, trace_id)
            assert not tree.orphans, f"trace {trace_id} has orphaned spans"
            assert not tree.unclosed, f"trace {trace_id} has unclosed spans"
            names = span_names(tree)
            if names.count("job_attempt") >= 2 and "pool_rebuild" in names:
                retried = retried or tree
        assert retried is not None, "no killed-and-retried trace found"
        names = span_names(retried)
        assert "service_request" in names
        assert "service_job" in names
        assert "retry_backoff" in names

        # live stats carry the supervision counters and the rolling
        # latency summary the dashboard polls
        assert stats["retries"] == executor.retries
        assert stats["pool_rebuilds"] == 1
        assert stats["latency"]["entail"]["ok"]["count"] == stats["jobs"]
        assert stats["latency_window"]["samples"] == stats["jobs"]

    def test_slow_job_rides_out_without_retry(self, tmp_path):
        # A slow worker is not a dead worker: the job must complete with
        # no supervisor involvement.
        plan = FaultPlan(tmp_path / "faults")
        plan.arm("worker.slow_job", payload={"seconds": 0.3})
        registry = MetricsRegistry()
        with JobExecutor(
            2,
            snapshot_dir=tmp_path / "snaps",
            registry=registry,
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.05, seed=7),
            fault_dir=plan.root,
        ) as executor:
            request_obj = entail_line("s0", QUERIES[0])
            del request_obj["id"]
            from repro.service.jobs import JobRequest

            result = executor.submit(
                JobRequest.from_obj(request_obj)
            ).result(timeout=300)
        assert result.ok and result.entailed is True
        assert result.seconds >= 0.3  # the injected stall is in the latency
        assert executor.retries == 0 and executor.pool_rebuilds == 0
        assert plan.fired("worker.slow_job") == 1

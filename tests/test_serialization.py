"""Tests for repro.logic.serialization."""

import pytest

from repro.logic.parser import ParseError, parse_atoms, parse_rules
from repro.logic.serialization import (
    dump_instance,
    dump_kb,
    dump_ruleset,
    load_instance,
    load_kb,
    load_kb_file,
    load_ruleset,
    save_kb,
)
from repro.kbs.staircase import staircase_kb
from repro.kbs.witnesses import fes_not_bts_kb, weakly_acyclic_kb


class TestInstanceRoundtrip:
    def test_roundtrip(self):
        atoms = parse_atoms("p(a, X), q(b), e(X, Y)")
        assert load_instance(dump_instance(atoms)) == atoms

    def test_dump_is_deterministic(self):
        atoms = parse_atoms("q(b), p(a)")
        assert dump_instance(atoms) == dump_instance(atoms.copy())

    def test_load_accepts_comments_and_blanks(self):
        text = "# header\np(a)\n\nq(b)\n"
        assert load_instance(text) == parse_atoms("p(a), q(b)")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            load_instance("# nothing\n")


class TestRulesetRoundtrip:
    def test_roundtrip_preserves_names_and_order(self):
        rules = parse_rules("[A] p(X) -> q(X, Y)\n[B] q(X, Y) -> p(Y)")
        loaded = load_ruleset(dump_ruleset(rules))
        assert loaded == rules
        assert loaded.names() == rules.names()


class TestKbRoundtrip:
    @pytest.mark.parametrize(
        "factory", [weakly_acyclic_kb, fes_not_bts_kb, staircase_kb]
    )
    def test_roundtrip(self, factory):
        kb = factory()
        loaded = load_kb(dump_kb(kb))
        assert loaded.facts == kb.facts
        assert loaded.rules == kb.rules
        assert loaded.name == kb.name

    def test_missing_sections_rejected(self):
        with pytest.raises(ParseError):
            load_kb("[facts]\np(a)\n")
        with pytest.raises(ParseError):
            load_kb("[rules]\n[R] p(X) -> q(X)\n")

    def test_content_before_section_rejected(self):
        with pytest.raises(ParseError):
            load_kb("p(a)\n[facts]\np(a)\n[rules]\n[R] p(X) -> q(X)\n")

    def test_file_roundtrip(self, tmp_path):
        kb = weakly_acyclic_kb()
        path = tmp_path / "kb.repro"
        save_kb(kb, path)
        loaded = load_kb_file(path)
        assert loaded.facts == kb.facts
        assert loaded.rules == kb.rules

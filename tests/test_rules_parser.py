"""Tests for repro.logic.rules and repro.logic.parser."""

import pytest

from repro.logic.atoms import Predicate
from repro.logic.parser import (
    ParseError,
    parse_atom,
    parse_atoms,
    parse_rule,
    parse_rules,
)
from repro.logic.rules import ExistentialRule, RuleSet
from repro.logic.terms import Constant, Variable


class TestParser:
    def test_parse_atom_with_variables_and_constants(self):
        at = parse_atom("edge(X, alice)")
        assert at.predicate == Predicate("edge", 2)
        assert at.args == (Variable("X"), Constant("alice"))

    def test_parse_zero_ary_atom(self):
        at = parse_atom("halted")
        assert at.predicate.arity == 0

    def test_parse_atom_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_atom("p(X")
        with pytest.raises(ParseError):
            parse_atom("p(X,)")
        with pytest.raises(ParseError):
            parse_atom("(X)")

    def test_parse_atoms_splits_on_top_level_commas(self):
        atoms = parse_atoms("p(X, Y), q(Y), r(Z, Z)")
        assert len(atoms) == 3

    def test_parse_atoms_rejects_empty(self):
        with pytest.raises(ParseError):
            parse_atoms("   ")

    def test_parse_atoms_rejects_unbalanced(self):
        with pytest.raises(ParseError):
            parse_atoms("p(X), q(Y))")

    def test_parse_rule(self):
        rule = parse_rule("p(X, Y) -> q(Y, Z)")
        assert rule.frontier == {Variable("Y")}
        assert rule.existential == {Variable("Z")}

    def test_parse_rule_with_label(self):
        rule = parse_rule("[R7] p(X) -> q(X)")
        assert rule.name == "R7"

    def test_parse_rule_rejects_double_arrow(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) -> q(X) -> r(X)")

    def test_parse_rules_program(self):
        ruleset = parse_rules(
            """
            # a comment
            [A] p(X) -> q(X)

            [B] q(X) -> r(X, Y)
            """
        )
        assert ruleset.names() == ["A", "B"]

    def test_parse_rules_reports_line_numbers(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_rules("[A] p(X) -> q(X)\nbroken line")

    def test_parse_rules_rejects_empty_program(self):
        with pytest.raises(ParseError):
            parse_rules("# only a comment")


class TestExistentialRule:
    def test_variable_classification(self):
        rule = parse_rule("p(X, Y), q(Y, W) -> r(Y, Z)")
        assert rule.frontier == {Variable("Y")}
        assert rule.existential == {Variable("Z")}
        assert rule.universal == {Variable("X"), Variable("Y"), Variable("W")}
        assert rule.nonfrontier_universal == {Variable("X"), Variable("W")}

    def test_datalog_detection(self):
        assert parse_rule("p(X) -> q(X)").is_datalog()
        assert not parse_rule("p(X) -> q(X, Y)").is_datalog()
        assert parse_rule("p(X) -> q(X, Y)").has_existential()

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ExistentialRule([], parse_atoms("p(X)"))

    def test_empty_head_rejected(self):
        with pytest.raises(ValueError):
            ExistentialRule(parse_atoms("p(X)"), [])

    def test_equality_ignores_name(self):
        r1 = parse_rule("[A] p(X) -> q(X)")
        r2 = parse_rule("[B] p(X) -> q(X)")
        assert r1 == r2

    def test_rename_apart(self):
        rule = parse_rule("p(X) -> q(X, Y)")
        renamed = rule.rename_apart("_1")
        assert Variable("X_1") in renamed.body.variables()
        assert renamed.existential == {Variable("Y_1")}

    def test_predicates_and_constants(self):
        rule = parse_rule("p(X, a) -> q(X)")
        assert {p.name for p in rule.predicates()} == {"p", "q"}
        assert rule.constants() == {Constant("a")}


class TestRuleSet:
    def test_auto_naming(self):
        ruleset = RuleSet([parse_rule("p(X) -> q(X)")])
        assert ruleset.names() == ["R1"]

    def test_duplicate_names_rejected(self):
        ruleset = RuleSet()
        ruleset.add(parse_rule("[A] p(X) -> q(X)"))
        with pytest.raises(ValueError):
            ruleset.add(parse_rule("[A] q(X) -> p(X)"))

    def test_lookup_by_name_and_index(self):
        ruleset = parse_rules("[A] p(X) -> q(X)\n[B] q(X) -> p(X)")
        assert ruleset["A"].name == "A"
        assert ruleset[1].name == "B"
        assert "A" in ruleset

    def test_datalog_partition(self):
        ruleset = parse_rules("[A] p(X) -> q(X)\n[B] q(X) -> r(X, Y)")
        assert [r.name for r in ruleset.datalog_rules()] == ["A"]
        assert [r.name for r in ruleset.existential_rules()] == ["B"]

    def test_predicates_union(self):
        ruleset = parse_rules("[A] p(X) -> q(X)\n[B] q(X) -> r(X, Y)")
        assert {p.name for p in ruleset.predicates()} == {"p", "q", "r"}

    def test_rejects_non_rules(self):
        with pytest.raises(TypeError):
            RuleSet().add("p(X) -> q(X)")  # type: ignore[arg-type]

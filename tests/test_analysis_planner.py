"""Tests for the analysis planner subsystem: the linear-fragment
termination decider, the breadth-level k-boundedness probe, the
consumed-budget fes certificate, and the verdict → strategy planner
(cache tiers, observability events, and the service integration)."""

import pytest

from repro.analysis import (
    STRATEGY_NAMES,
    Planner,
    Strategy,
    Verdict,
    fes_certificate,
    is_linear,
    linear_chase_terminates,
    plan,
    probe_k_bound,
    ruleset_fingerprint,
)
from repro.chase.engine import ChaseVariant
from repro.kbs.witnesses import manager_kb, transitive_closure_kb
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atoms, parse_rule
from repro.logic.rules import RuleSet
from repro.logic.serialization import dump_kb
from repro.obs import MetricsObserver, MetricsRegistry, observing
from repro.service.jobs import JobRequest, JobResult, execute_job
from repro.service.snapshots import SnapshotStore


def rules_of(*texts):
    return RuleSet(parse_rule(text, name=f"r{i}") for i, text in enumerate(texts))


def kb_of(facts_text, *rule_texts):
    return KnowledgeBase(parse_atoms(facts_text), rules_of(*rule_texts))


# ---------------------------------------------------------------------------
# linear-fragment termination decider
# ---------------------------------------------------------------------------


class TestLinearTermination:
    def test_self_refreshing_loop_diverges(self):
        rules = rules_of("p(X) -> p(Z)")
        assert is_linear(rules)
        assert linear_chase_terminates(rules) is False

    def test_terminating_chain(self):
        rules = rules_of("p(X) -> q(X, Z)", "q(X, Y) -> r(Y)")
        assert linear_chase_terminates(rules) is True

    def test_dead_null_cycle_terminates(self):
        # The fresh null dies at the next edge: p over the critical
        # constant is a duplicate, so the naive "generative edge in an
        # SCC" criterion would wrongly flag this as diverging.
        rules = rules_of("p(X) -> r(X, Z)", "r(X, Y) -> p(X)")
        assert linear_chase_terminates(rules) is True

    def test_alternating_refresh_diverges(self):
        rules = rules_of("p(X) -> q(X, Z)", "q(X, Y) -> p(Y)")
        assert linear_chase_terminates(rules) is False

    def test_non_linear_is_undecided(self):
        rules = rules_of("e(X, Y), e(Y, Z) -> e(X, Z)")
        assert not is_linear(rules)
        assert linear_chase_terminates(rules) is None

    def test_manager_ruleset_diverges(self):
        rules = manager_kb().rules
        assert is_linear(rules)
        assert linear_chase_terminates(rules) is False

    def test_shape_budget_exhaustion_is_undecided(self):
        rules = rules_of("p(X) -> q(X, Z)", "q(X, Y) -> p(Y)")
        assert linear_chase_terminates(rules, max_shapes=1) is None


# ---------------------------------------------------------------------------
# breadth-level k-boundedness probe
# ---------------------------------------------------------------------------


class TestKBoundProbe:
    def test_terminating_kb_saturates(self):
        probe = probe_k_bound(transitive_closure_kb(3), k_max=8)
        assert probe.bounded
        assert probe.fixpoint_level is not None
        assert probe.applications > 0

    def test_diverging_kb_never_saturates(self):
        probe = probe_k_bound(manager_kb(), k_max=3, atom_budget=200)
        assert not probe.bounded
        assert probe.fixpoint_level is None

    def test_monotone_in_k_max(self):
        small = probe_k_bound(transitive_closure_kb(3), k_max=8)
        large = probe_k_bound(transitive_closure_kb(3), k_max=16)
        assert small.fixpoint_level == large.fixpoint_level

    def test_atom_budget_reports_exhaustion(self):
        probe = probe_k_bound(manager_kb(), k_max=10, atom_budget=5)
        assert probe.exhausted
        assert probe.fixpoint_level is None


# ---------------------------------------------------------------------------
# fes certificate reports consumed budget
# ---------------------------------------------------------------------------


class TestFesCertificate:
    def test_success_consumed_equals_certificate(self):
        certificate, consumed = fes_certificate(
            transitive_closure_kb(3), max_steps=100
        )
        assert certificate is not None
        assert consumed == certificate

    def test_failure_reports_spent_budget_not_cap(self):
        certificate, consumed = fes_certificate(manager_kb(), max_steps=7)
        assert certificate is None
        assert 0 < consumed <= 7


# ---------------------------------------------------------------------------
# Verdict / Strategy plumbing
# ---------------------------------------------------------------------------


def make_verdict(**overrides):
    base = dict(
        rules_fingerprint="f" * 64,
        rule_count=1,
        weakly_acyclic=False,
        rule_acyclic=False,
        guarded=False,
        frontier_guarded=False,
        sticky=False,
        linear=False,
    )
    base.update(overrides)
    return Verdict(**base)


class TestVerdictStrategy:
    def test_verdict_round_trip(self):
        verdict = make_verdict(weakly_acyclic=True, k_bound=2)
        assert Verdict.from_obj(verdict.to_obj()) == verdict

    def test_strategy_round_trip(self):
        strategy = plan(make_verdict(guarded=True))
        assert Strategy.from_obj(strategy.to_obj()) == strategy

    def test_strategy_override_defaults_name(self):
        strategy = Strategy.from_obj(
            {"variant": "core", "core_every": 2, "max_steps": 50, "model_budget": 0}
        )
        assert strategy.name == "override"

    def test_strategy_override_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            Strategy.from_obj({"variant": "core"})

    def test_strategy_override_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            Strategy.from_obj(
                {"variant": "turbo", "core_every": 1, "max_steps": 1, "model_budget": 0}
            )

    def test_plan_ladder(self):
        assert plan(make_verdict(weakly_acyclic=True)).name == "terminating-fast"
        assert plan(make_verdict(k_bound=3)).name == "bounded-probe"
        assert plan(make_verdict(fes_applications=9)).name == "fes-core"
        assert plan(make_verdict(sticky=True)).name == "bts-core"
        assert plan(make_verdict()).name == "frontier-race"

    def test_plan_rewritable_verdicts_route_rewrite_first(self):
        # Rewritable (linear/guarded) verdicts wrap their chase rung as
        # rewrite-first; the fallback budgets are the rung's own.
        linear = plan(make_verdict(linear=True, linear_terminating=True))
        assert linear.name == "rewrite-first"
        assert linear.rewrite
        assert linear.max_steps == 1000  # terminating-fast fallback
        guarded = plan(make_verdict(guarded=True))
        assert guarded.name == "rewrite-first"
        assert guarded.rewrite
        assert guarded.model_budget == 6  # bts-core fallback
        assert not plan(make_verdict(sticky=True)).rewrite

    def test_plan_names_are_closed(self):
        for verdict in (
            make_verdict(weakly_acyclic=True),
            make_verdict(k_bound=1),
            make_verdict(fes_applications=1),
            make_verdict(sticky=True),
            make_verdict(),
        ):
            assert plan(verdict).name in STRATEGY_NAMES

    def test_terminating_fast_disables_model_finder(self):
        strategy = plan(make_verdict(rule_acyclic=True))
        assert strategy.model_budget == 0
        assert strategy.variant == ChaseVariant.RESTRICTED

    def test_fes_core_scales_budget_to_certificate(self):
        strategy = plan(make_verdict(fes_applications=300))
        assert strategy.variant == ChaseVariant.CORE
        assert strategy.max_steps == 600


# ---------------------------------------------------------------------------
# Planner caching
# ---------------------------------------------------------------------------


class TestPlannerCache:
    def test_memory_tier(self):
        planner = Planner()
        kb = transitive_closure_kb(3)
        first, source1 = planner.analyze(kb)
        second, source2 = planner.analyze(kb)
        assert (source1, source2) == ("computed", "memory")
        assert first == second

    def test_store_tier_shares_across_planners(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        kb = transitive_closure_kb(3)
        verdict, source = Planner().analyze(kb, store=store)
        assert source == "computed"
        revived, source2 = Planner().analyze(kb, store=store)
        assert source2 == "store"
        assert revived == verdict

    def test_cache_clear_recomputes(self):
        planner = Planner()
        kb = transitive_closure_kb(3)
        planner.analyze(kb)
        planner.cache_clear()
        assert planner.analyze(kb)[1] == "computed"

    def test_lru_eviction(self):
        planner = Planner(cache_size=1)
        first = transitive_closure_kb(3)
        second = manager_kb()
        planner.analyze(first)
        planner.analyze(second)  # evicts first
        assert planner.analyze(first)[1] == "computed"

    def test_fingerprint_matches_snapshot_catalog(self):
        from repro.service.snapshots import rules_fingerprint

        kb = manager_kb()
        assert ruleset_fingerprint(kb.rules) == rules_fingerprint(kb)

    def test_decide_emits_metrics(self):
        registry = MetricsRegistry()
        planner = Planner()
        kb = transitive_closure_kb(3)
        with observing(MetricsObserver(registry)):
            _, strategy, _ = planner.decide(kb)
            planner.decide(kb)
        snapshot = registry.snapshot()
        assert snapshot["planner.verdicts"]["value"] == 1
        assert snapshot["planner.cache_hits"]["value"] == 1
        assert snapshot[f"planner.strategy.{strategy.name}"]["value"] == 2


# ---------------------------------------------------------------------------
# routing spot checks on the witness KBs
# ---------------------------------------------------------------------------


class TestRouting:
    def test_transitive_closure_routes_terminating(self):
        _, strategy, _ = Planner().decide(transitive_closure_kb(3))
        assert strategy.name == "terminating-fast"

    def test_manager_routes_rewrite_first(self):
        verdict, strategy, _ = Planner().decide(manager_kb())
        assert verdict.rewritable
        assert strategy.name == "rewrite-first"
        assert strategy.rewrite

    def test_unknown_ruleset_routes_frontier_race(self):
        # Frontier {X, Z} split across body atoms (not frontier-guarded),
        # Y marked and repeated (not sticky), an existential cycle (not
        # weakly acyclic), two body atoms (not linear) — and diverging.
        kb = kb_of(
            "e(a, b), e(b, c)", "e(X, Y), e(Y, Z) -> e(X, Z), e(Z, W)"
        )
        verdict, strategy, _ = Planner(
            fes_budget=5, k_max=2, k_atom_budget=50
        ).decide(kb)
        assert not verdict.decidable
        assert strategy.name == "frontier-race"


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def entail_request(self, kb, query, **extra):
        return JobRequest(
            op="entail", kb_text=dump_kb(kb), query=query, **extra
        )

    def test_planner_routed_job_reports_strategy(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        request = self.entail_request(
            transitive_closure_kb(3), "e(v0, v3)", planner=True
        )
        result = execute_job(request, store=store)
        assert result.ok
        assert result.entailed is True
        assert result.strategy == "terminating-fast"

    def test_planner_answers_match_plain_config(self, tmp_path):
        kb = transitive_closure_kb(3)
        for query, want in (("e(v0, v3)", True), ("e(v3, v0)", False)):
            plain = execute_job(self.entail_request(kb, query))
            routed = execute_job(
                self.entail_request(kb, query, planner=True),
                store=SnapshotStore(tmp_path / f"s-{want}"),
            )
            assert plain.entailed == routed.entailed == want

    def test_explicit_strategy_override_wins(self):
        request = self.entail_request(
            transitive_closure_kb(3),
            "e(v0, v3)",
            planner=True,
            strategy={
                "name": "pinned",
                "variant": ChaseVariant.CORE,
                "core_every": 1,
                "max_steps": 100,
                "model_budget": 0,
            },
        )
        result = execute_job(request)
        assert result.ok
        assert result.strategy == "pinned"
        assert result.entailed is True

    def test_bad_strategy_override_fails_cleanly(self):
        request = self.entail_request(
            transitive_closure_kb(3), "e(v0, v3)", strategy={"variant": "core"}
        )
        result = execute_job(request)
        assert not result.ok
        assert "missing fields" in result.error

    def test_plain_path_reports_no_strategy(self):
        result = execute_job(self.entail_request(transitive_closure_kb(3), "e(v0, v3)"))
        assert result.strategy is None
        assert "strategy" not in result.to_obj()

    def test_dedup_key_distinguishes_routing(self):
        kb = transitive_closure_kb(3)
        plain = self.entail_request(kb, "e(v0, v3)")
        routed = self.entail_request(kb, "e(v0, v3)", planner=True)
        pinned = self.entail_request(
            kb,
            "e(v0, v3)",
            strategy={"variant": "core", "core_every": 1, "max_steps": 9, "model_budget": 0},
        )
        keys = {plain.dedup_key(), routed.dedup_key(), pinned.dedup_key()}
        assert len(keys) == 3

    def test_request_wire_shape_is_stable(self):
        plain = self.entail_request(transitive_closure_kb(3), "e(v0, v3)")
        assert "planner" not in plain.to_obj()
        assert "strategy" not in plain.to_obj()
        routed = JobRequest.from_obj(
            {**plain.to_obj(), "planner": True, "strategy": None}
        )
        assert routed.planner is True
        assert routed.to_obj()["planner"] is True

    def test_result_round_trips_strategy(self):
        result = JobResult(op="entail", strategy="bts-core")
        assert JobResult.from_obj(result.to_obj()).strategy == "bts-core"

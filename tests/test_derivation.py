"""Tests for repro.chase.derivation."""

import pytest

from repro.chase import core_chase, restricted_chase
from repro.chase.derivation import Derivation, DerivationStep
from repro.kbs.witnesses import bts_not_fes_kb, fes_not_bts_kb, transitive_closure_kb
from repro.logic.parser import parse_atoms
from repro.logic.substitution import Substitution


class TestRecordShape:
    def test_step_zero_has_no_trigger(self):
        result = restricted_chase(transitive_closure_kb(2), max_steps=10)
        assert result.derivation.steps[0].trigger is None
        assert result.derivation.steps[0].index == 0

    def test_indexes_consecutive(self):
        result = restricted_chase(transitive_closure_kb(3), max_steps=10)
        for position, step in enumerate(result.derivation):
            assert step.index == position

    def test_len_and_instance_access(self):
        result = restricted_chase(transitive_closure_kb(2), max_steps=10)
        derivation = result.derivation
        assert len(derivation) == result.applications + 1
        assert derivation.instance(0) == derivation.steps[0].instance
        assert derivation.last_instance == derivation.steps[-1].instance

    def test_requires_initial_step(self):
        kb = transitive_closure_kb(2)
        with pytest.raises(ValueError):
            Derivation(kb, [])

    def test_rejects_bad_indexes(self):
        kb = transitive_closure_kb(2)
        step0 = DerivationStep(
            0, None, kb.facts, Substitution.identity(), kb.facts
        )
        step_bad = DerivationStep(
            2, None, kb.facts, Substitution.identity(), kb.facts
        )
        with pytest.raises(ValueError):
            Derivation(kb, [step0, step_bad])

    def test_identity_step_detection(self):
        result = restricted_chase(transitive_closure_kb(2), max_steps=10)
        assert all(step.is_identity_step() for step in result.derivation)


class TestTraces:
    def test_trace_identity_at_same_index(self):
        result = core_chase(fes_not_bts_kb(), max_steps=50)
        trace = result.derivation.trace(1, 1)
        assert len(trace) == 0

    def test_trace_composes_simplifications(self):
        result = core_chase(fes_not_bts_kb(), max_steps=50)
        derivation = result.derivation
        last = len(derivation) - 1
        trace = derivation.trace(0, last)
        # the trace must be a homomorphism from F_0 into F_last
        assert trace.is_homomorphism(derivation.instance(0), derivation.last_instance)

    def test_trace_out_of_range(self):
        result = restricted_chase(transitive_closure_kb(2), max_steps=10)
        with pytest.raises(IndexError):
            result.derivation.trace(0, 99)
        with pytest.raises(IndexError):
            result.derivation.trace(2, 1)

    def test_monotonic_traces_are_identity(self):
        result = restricted_chase(bts_not_fes_kb(), max_steps=8)
        derivation = result.derivation
        trace = derivation.trace(0, len(derivation) - 1)
        assert len(trace.drop_trivial()) == 0


class TestAggregationAndFairness:
    def test_natural_aggregation_of_monotonic_run_is_last_instance(self):
        result = restricted_chase(bts_not_fes_kb(), max_steps=8)
        derivation = result.derivation
        assert derivation.natural_aggregation() == derivation.last_instance

    def test_natural_aggregation_of_core_run_is_superset(self):
        result = core_chase(fes_not_bts_kb(), max_steps=50)
        aggregation = result.derivation.natural_aggregation()
        assert result.derivation.last_instance.issubset(aggregation)

    def test_natural_aggregation_prefix_parameter(self):
        result = restricted_chase(bts_not_fes_kb(), max_steps=8)
        partial = result.derivation.natural_aggregation(upto=2)
        full = result.derivation.natural_aggregation()
        assert partial.issubset(full)
        assert len(partial) < len(full)

    def test_fairness_clean_on_terminating_runs(self):
        result = core_chase(transitive_closure_kb(3), max_steps=100)
        assert result.derivation.check_fairness_prefix() == []

    def test_monotonicity_detection(self):
        restricted = restricted_chase(fes_not_bts_kb(), max_steps=8)
        assert restricted.derivation.is_monotonic()
        core = core_chase(fes_not_bts_kb(), max_steps=50)
        # the fes witness folds atoms away, so the core run is non-monotonic
        assert not core.derivation.is_monotonic()

    def test_validate_catches_tampered_instances(self):
        result = restricted_chase(transitive_closure_kb(2), max_steps=10)
        steps = list(result.derivation.steps)
        tampered = DerivationStep(
            steps[-1].index,
            steps[-1].trigger,
            steps[-1].pre_instance,
            steps[-1].simplification,
            parse_atoms("bogus(x)"),
        )
        steps[-1] = tampered
        broken = Derivation(result.derivation.kb, steps)
        with pytest.raises(AssertionError):
            broken.validate()

"""The compiled join evaluator.

:func:`compiled_assignments` replays the *indexed* backtracking search of
:func:`repro.logic.homomorphism.homomorphisms` over the int tuples of a
:class:`~repro.logic.compiled.relations.CompiledView`:

* the same candidate pools (per-(position, image) postings intersected
  over every already-decided argument, whole relation when none is
  decided, empty on a missing posting);
* the same most-constrained-first selection (first strictly smaller pool
  wins, scan stops at a singleton, dead end on an empty pool);
* the same candidate order (rows sorted by the per-argument
  ``(is_variable, name)`` key — the argument component of
  :meth:`Atom.sort_key`, whose predicate component is constant inside a
  relation);
* the same undo accounting (every clash or exhausted subtree bumps
  ``_stats["backtracks"]`` exactly once, like ``_undo``).

Because pools, order and tie-breaks coincide, the two paths enumerate
**identical witnesses in identical order** — the differential suite
asserts equality, and the chase produces byte-identical application
counts whichever path runs.

Two structural changes make the replay fast without changing what it
enumerates:

* **Compilation.**  A source pattern is *compiled* once
  (:func:`encode_source`): per atom, the constant argument positions are
  split from the variable ones.  Each search then pre-intersects the
  constant postings a single time (they never change while the
  assignment evolves), so the inner candidates() loop touches only
  variable positions; and the matcher skips constant positions entirely
  (any row drawn from a pool intersected with the constant postings
  carries them by construction — the object matcher re-checks them,
  but those checks cannot fail, so skipping preserves both witnesses and
  backtrack counts).  Plans are cached on the source's
  :class:`~repro.logic.compiled.relations.CompiledView` and invalidated
  by mutation, so rule bodies compile exactly once per process.
* **An explicit frame stack** (descend = select an atom and push,
  advance = try the top frame's next candidate, exhaustion = reinsert
  the atom and pop) replaces the recursion, removing the
  nested-generator bubbling that dominates deep searches.

Injective (isomorphism) searches are *not* compiled — callers bail to
the object path (see the routing check in
:func:`repro.logic.homomorphism.homomorphisms`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from ..substitution import Substitution
from .interner import symbol_table
from .relations import compiled_view

if TYPE_CHECKING:  # pragma: no cover
    from ..atoms import Atom
    from ..atomset import AtomSet
    from ..terms import Term

__all__ = [
    "compiled_assignments",
    "compiled_homomorphisms",
    "encode_source",
    "source_plan",
    "run_plan",
]

_EMPTY: frozenset = frozenset()


def encode_source(
    source_atoms: "list[Atom]",
) -> tuple[list[tuple], frozenset]:
    """Compile a source pattern: ``(plan atoms, variable codes)``.

    Each plan atom is ``(pred_code, arg_codes, var_positions,
    const_positions)`` with the two position tuples holding
    ``(position, code)`` pairs in argument order; the frozenset holds the
    codes of every variable occurring in the pattern.  The split is what
    lets a search probe constant postings once instead of every time an
    atom's pool is recomputed.
    """
    table = symbol_table()
    is_var = table.is_variable_code
    encoded: list[tuple] = []
    var_codes: set[int] = set()
    for at in source_atoms:
        enc = table.encode_atom(at)
        args = enc[2]
        var_positions = []
        const_positions = []
        for position, code in enumerate(args):
            if is_var[code]:
                var_positions.append((position, code))
                var_codes.add(code)
            else:
                const_positions.append((position, code))
        encoded.append(
            (enc[1], args, tuple(var_positions), tuple(const_positions))
        )
    return encoded, frozenset(var_codes)


def source_plan(
    source_set: "AtomSet", source_atoms: "list[Atom]"
) -> tuple[list[tuple], frozenset]:
    """The compiled plan of *source_set*, cached on its view.

    *source_atoms* must be ``source_set.sorted_atoms()`` (the caller
    usually has the list already).  Rule bodies and repeatedly searched
    instances hit the cache; any mutation of the atomset drops it.
    """
    view = compiled_view(source_set)
    plan = view.plan
    if plan is None:
        plan = view.plan = encode_source(source_atoms)
    return plan


def compiled_assignments(
    source_atoms: "list[Atom]",
    target: "AtomSet",
    partial: Optional[Substitution] = None,
    forbidden_images: "Iterable[Term]" = (),
    _stats: Optional[dict] = None,
    source_set: "Optional[AtomSet]" = None,
) -> Iterator[tuple[dict[int, int], frozenset]]:
    """Enumerate homomorphism assignments in int space.

    Yields ``(assignment, source_var_codes)`` pairs where ``assignment``
    maps variable codes to term codes and ``source_var_codes`` is the
    (constant) frozenset of variable codes occurring in *source_atoms*.
    **The yielded dict is live** — it is mutated as the search backtracks,
    so consumers must read it before advancing the iterator (this is what
    lets the core maintainer's escape scan test properness without
    materializing a :class:`Substitution` per endomorphism).

    *source_atoms* must already be in canonical sorted order (as produced
    by the caller's ``_as_atom_list``); the search branches over them in
    the same most-constrained-first order as the object-level code.  Pass
    the originating atomset as *source_set* to reuse its cached plan.
    """
    if not isinstance(source_atoms, list):
        # Direct callers may hand an AtomSet (or any iterable) straight
        # in; its raw-set iteration order is hash-dependent, and the
        # branch order below must match the object search's canonical
        # one, so normalize exactly as ``_as_atom_list`` would.
        from ..atomset import AtomSet

        if isinstance(source_atoms, AtomSet):
            if source_set is None:
                source_set = source_atoms
            source_atoms = source_atoms.sorted_atoms()
        else:
            source_atoms = sorted(set(source_atoms))

    table = symbol_table()
    encode_term = table.encode_term

    assignment: dict[int, int] = {}
    if partial is not None:
        for var, term in partial.items():
            assignment[encode_term(var)] = encode_term(term)
    forbidden_codes = frozenset(encode_term(t) for t in forbidden_images)
    if forbidden_codes and any(c in forbidden_codes for c in assignment.values()):
        return

    if source_set is not None:
        encoded, source_var_codes = source_plan(source_set, source_atoms)
    else:
        encoded, source_var_codes = encode_source(source_atoms)

    view = compiled_view(target)
    relations = view.relations
    # Fail fast: a source predicate with no rows kills every branch
    # (the compiled twin of ``count_with_predicate(...) == 0``).
    for entry in encoded:
        rel = relations.get(entry[0])
        if rel is None or not rel.rows:
            return

    for assignment in run_plan(
        encoded, view, assignment, forbidden_codes, _stats
    ):
        yield assignment, source_var_codes


def _search_items(encoded: list[tuple], view) -> list[tuple]:
    """The per-(plan, target) working items, cached on the target view.

    One item per plan atom: ``(var_positions, const_pool, postings,
    sort_keys)``.  The constant postings are intersected here, once —
    they do not depend on the assignment — so the selection loop only
    probes variable positions.  The pools snapshot the view's current
    contents; any mutation clears the cache (relations.py), and the
    cached plan object is stored alongside to pin its ``id``.
    """
    cache = view.search_items
    entry = cache.get(id(encoded))
    if entry is not None and entry[0] is encoded:
        return entry[1]
    relations = view.relations
    items = []
    for pred_code, _args, var_positions, const_positions in encoded:
        rel = relations[pred_code]
        pool = None
        postings = rel.postings
        for position, code in const_positions:
            bucket = postings.get((position, code))
            if bucket is None:
                pool = _EMPTY
                break
            pool = bucket if pool is None else (pool & bucket)
            if not pool:
                pool = _EMPTY
                break
        if pool is None:
            pool = rel.rows
        items.append((var_positions, pool, postings, rel.sort_keys))
    cache[id(encoded)] = (encoded, items)
    return items


def run_plan(
    encoded: list[tuple],
    view,
    assignment: dict[int, int],
    forbidden_codes: frozenset,
    _stats: Optional[dict] = None,
) -> Iterator[dict[int, int]]:
    """The compiled search core over a pre-compiled source plan.

    *encoded* is read-only (plan atoms from :func:`encode_source`, whose
    relations must all be present in *view* — run the fail-fast first).
    Yields the live *assignment* dict at every solution; see
    :func:`compiled_assignments` for the aliasing caveat.  Callers that
    skip :func:`compiled_assignments` (the escape scan) must have
    performed its prechecks themselves or know they hold vacuously.
    """
    stats_on = _stats is not None
    assignment_get = assignment.get
    remaining = list(_search_items(encoded, view))

    def undo(newly_bound: list[int]) -> None:
        if stats_on:
            _stats["backtracks"] += 1
        for code in newly_bound:
            del assignment[code]

    def match(var_positions: tuple, row: tuple[int, ...]) -> Optional[list[int]]:
        # Constant positions are guaranteed by the pool (it was
        # intersected with their postings) — only variable positions can
        # clash, exactly as in the object matcher (whose constant checks
        # never fail for pool-drawn candidates).
        newly_bound: list[int] = []
        for position, code in var_positions:
            tgt = row[position]
            bound = assignment_get(code)
            if bound is not None:
                if bound != tgt:
                    undo(newly_bound)
                    return None
                continue
            if tgt in forbidden_codes:
                undo(newly_bound)
                return None
            assignment[code] = tgt
            newly_bound.append(code)
        return newly_bound

    # Frames mirror one level of the object search's recursion:
    # [chosen item, its index in ``remaining``, ordered candidates,
    #  next candidate position, bindings of the current match (or None)].
    stack: list[list] = []
    descending = True
    while True:
        if descending:
            if not remaining:
                yield assignment
                descending = False
                continue
            best_index = 0
            best_pool = None
            best_len = -1
            dead = False
            for index, item in enumerate(remaining):
                # Inlined candidates(): start from the constant pool,
                # narrow through every *bound* variable position.
                pool = item[1]
                postings = item[2]
                for position, code in item[0]:
                    image = assignment_get(code)
                    if image is None:
                        continue
                    bucket = postings.get((position, image))
                    if bucket is None:
                        pool = _EMPTY
                        break
                    pool = pool & bucket
                    if not pool:
                        break
                size = len(pool)
                if best_pool is None or size < best_len:
                    best_index, best_pool, best_len = index, pool, size
                    if not size:
                        dead = True
                        break
                    if size == 1:
                        break
            if dead:
                descending = False
                continue
            chosen = remaining.pop(best_index)
            ordered = sorted(best_pool, key=chosen[3].__getitem__)
            stack.append([chosen, best_index, ordered, 0, None])
            descending = False
            continue
        # Advance the top frame: undo the subtree we are returning from
        # (if any), then try its next candidate.
        if not stack:
            return
        frame = stack[-1]
        newly_bound = frame[4]
        if newly_bound is not None:
            undo(newly_bound)
            frame[4] = None
        chosen, best_index, ordered, position = frame[0], frame[1], frame[2], frame[3]
        var_positions = chosen[0]
        matched = False
        while position < len(ordered):
            row = ordered[position]
            position += 1
            bound = match(var_positions, row)
            if bound is not None:
                frame[3] = position
                frame[4] = bound
                matched = True
                break
        if matched:
            descending = True
        else:
            stack.pop()
            remaining.insert(best_index, chosen)
            # stay in advance mode: return to the caller frame


def compiled_homomorphisms(
    source_atoms: "list[Atom]",
    target: "AtomSet",
    partial: Optional[Substitution] = None,
    forbidden_images: "Iterable[Term]" = (),
    _stats: Optional[dict] = None,
    source_set: "Optional[AtomSet]" = None,
) -> Iterator[Substitution]:
    """Enumerate homomorphisms as :class:`Substitution` objects — the
    decompiled form of :func:`compiled_assignments`, yielding exactly the
    substitutions (same bindings, same order) the object-level indexed
    search would."""
    decode = symbol_table().decode_term
    for assignment, source_var_codes in compiled_assignments(
        source_atoms,
        target,
        partial=partial,
        forbidden_images=forbidden_images,
        _stats=_stats,
        source_set=source_set,
    ):
        yield Substitution(
            {
                decode(var): decode(term)
                for var, term in assignment.items()
                if var in source_var_codes
            }
        )

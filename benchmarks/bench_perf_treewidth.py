"""P1d — engine performance: treewidth machinery.

Exact solver vs heuristics vs lower bounds on grids (the hard family for
elimination orderings) and on the paper's chase structures; plus the
generic grid-containment search.
"""

import pytest

from repro.kbs.generators import grid_instance
from repro.kbs.staircase import universal_model_window
from repro.treewidth import (
    contains_grid,
    gaifman_graph,
    mmd_lower_bound,
    treewidth,
    treewidth_exact,
    treewidth_upper_bound,
)


@pytest.mark.parametrize("n", [3, 4])
def bench_exact_treewidth_grid(benchmark, n):
    graph = gaifman_graph(grid_instance(n))
    width = benchmark(lambda: treewidth_exact(graph))
    assert width == n


@pytest.mark.parametrize("n", [6, 10])
def bench_minfill_upper_bound_grid(benchmark, n):
    graph = gaifman_graph(grid_instance(n))
    width, _ = benchmark(lambda: treewidth_upper_bound(graph))
    assert width >= n


@pytest.mark.parametrize("n", [6, 10])
def bench_mmd_lower_bound_grid(benchmark, n):
    graph = gaifman_graph(grid_instance(n))
    bound = benchmark(lambda: mmd_lower_bound(graph))
    assert bound >= 2


def bench_exact_treewidth_staircase_window(benchmark):
    """The per-step measurement of experiments E3/E6."""
    window = universal_model_window(3)
    width = benchmark(lambda: treewidth(window))
    assert width >= 2


@pytest.mark.parametrize("n", [2, 3])
def bench_grid_containment_search(benchmark, n):
    atoms = grid_instance(4)
    found = benchmark(lambda: contains_grid(atoms, n))
    assert found

"""One-call rule-set analysis summary.

Aggregates every syntactic criterion the library implements into a
single report — what the CLI's ``classify`` command and the Figure 1
experiment both build on.  Each criterion is *sufficient* for the class
it names; ``False`` means "not detected by this criterion", never "not
in the class".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..logic.kb import KnowledgeBase
from ..logic.rules import RuleSet
from .classes import fes_certificate
from .guardedness import is_frontier_guarded, is_guarded
from .rule_dependencies import is_rule_acyclic
from .sticky import is_sticky
from .weak_acyclicity import is_weakly_acyclic

__all__ = ["RulesetReport", "analyze_ruleset"]


@dataclass(frozen=True)
class RulesetReport:
    """The verdicts of all syntactic criteria (plus an optional budgeted
    fes certificate when a KB was supplied)."""

    rule_count: int
    weakly_acyclic: bool
    rule_acyclic: bool
    guarded: bool
    frontier_guarded: bool
    sticky: bool
    fes_applications: Optional[int] = None
    #: Core-chase applications the fes certification actually performed
    #: (equals ``fes_applications`` on success; on failure, the budget
    #: consumed before giving up — not the cap).  None when no KB was
    #: supplied, i.e. certification never ran.
    fes_budget_consumed: Optional[int] = None

    @property
    def terminates_all_variants(self) -> bool:
        """Weak acyclicity or rule acyclicity certifies termination of
        every chase variant on every instance."""
        return self.weakly_acyclic or self.rule_acyclic

    @property
    def decidable_cq_entailment(self) -> bool:
        """Any of the criteria certifies decidable CQ entailment (fes via
        termination, bts via guardedness, sticky via its own rewriting
        argument)."""
        return (
            self.terminates_all_variants
            or self.frontier_guarded
            or self.sticky
            or self.fes_applications is not None
        )

    def as_rows(self) -> list[tuple[str, str]]:
        """Label/value rows for tabular output."""
        rows = [
            ("weakly acyclic", "yes" if self.weakly_acyclic else "no"),
            ("rule-acyclic", "yes" if self.rule_acyclic else "no"),
            ("guarded", "yes" if self.guarded else "no"),
            ("frontier-guarded", "yes" if self.frontier_guarded else "no"),
            ("sticky", "yes" if self.sticky else "no"),
        ]
        if self.fes_applications is not None:
            rows.append(("fes (this instance)", f"yes ({self.fes_applications} apps)"))
        return rows


def analyze_ruleset(
    rules: RuleSet,
    kb: Optional[KnowledgeBase] = None,
    fes_budget: int = 200,
) -> RulesetReport:
    """Run every syntactic criterion; when *kb* is given, also attempt
    the budgeted instance-level fes certificate."""
    certificate = None
    consumed = None
    if kb is not None:
        certificate, consumed = fes_certificate(kb, max_steps=fes_budget)
    return RulesetReport(
        rule_count=len(rules),
        weakly_acyclic=is_weakly_acyclic(rules),
        rule_acyclic=is_rule_acyclic(rules),
        guarded=is_guarded(rules),
        frontier_guarded=is_frontier_guarded(rules),
        sticky=is_sticky(rules),
        fes_applications=certificate,
        fes_budget_consumed=consumed,
    )

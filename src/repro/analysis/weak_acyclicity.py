"""Weak acyclicity — the classical sufficient condition for chase
termination (hence for fes membership).

The *dependency graph* of a rule set has the predicate positions as
nodes.  For every rule, every frontier variable ``x``, and every body
position ``p`` of ``x``:

* a **regular** edge ``p → q`` for every head position ``q`` of ``x``;
* a **special** edge ``p ⇒ q`` for every head position ``q`` of every
  *existential* variable of the rule.

A rule set is *weakly acyclic* iff no cycle goes through a special edge.
Weak acyclicity guarantees termination of the (semi-)oblivious chase on
every instance, a fortiori of the restricted and core chases — so weakly
acyclic rule sets are fes (terminating core chase, the innermost class
of the paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..logic.rules import RuleSet
from .positions import Position, variable_positions

__all__ = ["DependencyGraph", "dependency_graph", "is_weakly_acyclic"]


@dataclass
class DependencyGraph:
    """The position dependency graph with edge kinds."""

    regular: dict[Position, set[Position]] = field(default_factory=dict)
    special: dict[Position, set[Position]] = field(default_factory=dict)

    def add_regular(self, source: Position, target: Position) -> None:
        self.regular.setdefault(source, set()).add(target)

    def add_special(self, source: Position, target: Position) -> None:
        self.special.setdefault(source, set()).add(target)

    def nodes(self) -> set[Position]:
        result: set[Position] = set()
        for mapping in (self.regular, self.special):
            for source, targets in mapping.items():
                result.add(source)
                result.update(targets)
        return result

    def successors(self, node: Position) -> Iterator[tuple[Position, bool]]:
        """Yield ``(target, is_special)`` pairs."""
        for target in self.regular.get(node, ()):
            yield (target, False)
        for target in self.special.get(node, ()):
            yield (target, True)

    def has_cycle_through_special_edge(self) -> bool:
        """True iff some cycle uses at least one special edge.

        Equivalent formulation used here: for every special edge
        ``p ⇒ q``, check whether ``p`` is reachable from ``q`` (any edge
        kinds); if so the special edge closes a cycle.
        """
        for source, targets in self.special.items():
            for target in targets:
                if self._reaches(target, source):
                    return True
        return False

    def _reaches(self, start: Position, goal: Position) -> bool:
        if start == goal:
            return True
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for successor, _ in self.successors(node):
                if successor == goal:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return False


def dependency_graph(rules: RuleSet) -> DependencyGraph:
    """Build the dependency graph of a rule set."""
    graph = DependencyGraph()
    for rule in rules:
        body_positions = {
            var: list(variable_positions(rule.body, var)) for var in rule.frontier
        }
        existential_targets = [
            position
            for var in rule.existential
            for position in variable_positions(rule.head, var)
        ]
        for var in rule.frontier:
            head_targets = list(variable_positions(rule.head, var))
            for source in body_positions[var]:
                for target in head_targets:
                    graph.add_regular(source, target)
                for target in existential_targets:
                    graph.add_special(source, target)
    return graph


def is_weakly_acyclic(rules: RuleSet) -> bool:
    """True iff the rule set is weakly acyclic (sufficient for fes)."""
    return not dependency_graph(rules).has_cycle_through_special_edge()
